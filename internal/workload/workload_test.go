package workload

import (
	"testing"

	"weakrace/internal/core"
	"weakrace/internal/memmodel"
	"weakrace/internal/sim"
	"weakrace/internal/trace"
)

// run simulates a workload and returns the detector's analysis.
func run(t *testing.T, w *Workload, model memmodel.Model, seed int64) (*sim.Result, *core.Analysis) {
	t.Helper()
	r, err := sim.Run(w.Prog, sim.Config{Model: model, Seed: seed, InitMemory: w.InitMemory})
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	if !r.Completed {
		t.Fatalf("%s: did not complete", w.Name)
	}
	a, err := core.Analyze(trace.FromExecution(r.Exec), core.Options{})
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	return r, a
}

func TestFigure1aAlwaysRaces(t *testing.T) {
	w := Figure1a()
	for _, model := range memmodel.All {
		for seed := int64(0); seed < 20; seed++ {
			_, a := run(t, w, model, seed)
			if a.RaceFree() {
				t.Fatalf("%v seed %d: figure 1a race-free", model, seed)
			}
		}
	}
}

func TestFigure1bNeverRaces(t *testing.T) {
	w := Figure1b()
	for _, model := range memmodel.All {
		for seed := int64(0); seed < 20; seed++ {
			_, a := run(t, w, model, seed)
			if !a.RaceFree() {
				t.Fatalf("%v seed %d: figure 1b racy", model, seed)
			}
		}
	}
}

func TestFigure2StaleDequeueReachableOnWeak(t *testing.T) {
	r, seed, ok := FindFig2StaleSeed(sim.Config{Model: memmodel.WO, RetireProb: 0.15}, 5000)
	if !ok {
		t.Fatal("no WO seed in [0,5000) produced the Figure 2b stale dequeue")
	}
	// The stale dequeue must come with a stale-read witness.
	if r.Exec.StaleReads == 0 {
		t.Fatalf("seed %d: stale dequeue without stale-read witness", seed)
	}
	if !ClassifyFig2(r.Exec).TookQueue {
		t.Fatalf("seed %d: stale dequeue without taking the queue", seed)
	}
}

func TestFig2StaleScriptDeterministic(t *testing.T) {
	for _, model := range []memmodel.Model{memmodel.WO, memmodel.RCsc, memmodel.DRF0, memmodel.DRF1} {
		for seed := int64(0); seed < 10; seed++ {
			r, err := RunFig2Stale(model, seed)
			if err != nil {
				t.Fatalf("%v seed %d: %v", model, seed, err)
			}
			if r.Exec.StaleReads == 0 {
				t.Fatalf("%v seed %d: no stale-read witness", model, seed)
			}
			if !r.Completed {
				t.Fatalf("%v seed %d: did not complete", model, seed)
			}
		}
	}
}

func TestFig2ScriptFailsOnSC(t *testing.T) {
	// Under SC nothing is buffered, so the scripted retirement must be
	// reported as inapplicable rather than silently skipped.
	w := Figure2()
	_, err := sim.Run(w.Prog, sim.Config{
		Model: memmodel.SC, InitMemory: w.InitMemory, Script: Fig2StaleScript(),
	})
	if err == nil {
		t.Fatal("scripted retirement applied under SC")
	}
}

// TSO's FIFO store buffer is immune to the Figure 2 bug class: the queue
// write always becomes visible before the QEmpty write, so the stale
// dequeue is unreachable — by seed search and by scripted construction.
func TestFigure2StaleDequeueUnreachableOnTSO(t *testing.T) {
	if _, seed, ok := FindFig2StaleSeed(sim.Config{Model: memmodel.TSO, RetireProb: 0.15}, 3000); ok {
		t.Fatalf("seed %d: TSO produced the stale dequeue despite FIFO stores", seed)
	}
	if _, err := RunFig2Stale(memmodel.TSO, 1); err == nil {
		t.Fatal("scripted out-of-order retirement applied on TSO")
	}
}

func TestFigure2StaleDequeueUnreachableOnSC(t *testing.T) {
	w := Figure2()
	for seed := int64(0); seed < 500; seed++ {
		r, err := sim.Run(w.Prog, sim.Config{Model: memmodel.SC, Seed: seed, InitMemory: w.InitMemory})
		if err != nil {
			t.Fatal(err)
		}
		if ClassifyFig2(r.Exec).StaleDequeue {
			t.Fatalf("seed %d: SC execution dequeued the stale address", seed)
		}
	}
}

func TestFigure2AlwaysHasQueueRaces(t *testing.T) {
	// Whatever the interleaving, P1's queue writes race with P2's reads
	// when P2 takes the queue branch.
	w := Figure2()
	for seed := int64(0); seed < 50; seed++ {
		r, a := run(t, w, memmodel.WO, seed)
		if ClassifyFig2(r.Exec).TookQueue && a.RaceFree() {
			t.Fatalf("seed %d: P2 dequeued but no race reported", seed)
		}
	}
}

func TestProducerConsumer(t *testing.T) {
	synced := ProducerConsumer(4, true)
	buggy := ProducerConsumer(4, false)
	for _, model := range memmodel.All {
		for seed := int64(0); seed < 10; seed++ {
			if _, a := run(t, synced, model, seed); !a.RaceFree() {
				t.Fatalf("%v seed %d: synced producer-consumer racy", model, seed)
			}
			if _, a := run(t, buggy, model, seed); a.RaceFree() {
				t.Fatalf("%v seed %d: unsynced producer-consumer race-free", model, seed)
			}
		}
	}
}

func TestProducerConsumerDelivery(t *testing.T) {
	// With release/acquire flags the consumer must read every item's
	// value, on every model.
	w := ProducerConsumer(4, true)
	for _, model := range memmodel.All {
		for seed := int64(0); seed < 20; seed++ {
			r, _ := run(t, w, model, seed)
			var got []int64
			for _, op := range r.Exec.OpsOf(1) {
				if op.Kind == sim.OpDataRead {
					got = append(got, op.Value)
				}
			}
			if len(got) != 4 {
				t.Fatalf("%v seed %d: consumer read %d items", model, seed, len(got))
			}
			for i, v := range got {
				if v != int64(100+i) {
					t.Fatalf("%v seed %d: item %d = %d, want %d", model, seed, i, v, 100+i)
				}
			}
		}
	}
}

func TestLockedCounter(t *testing.T) {
	clean := LockedCounter(3, 3, -1)
	buggy := LockedCounter(3, 3, 1)
	for _, model := range memmodel.All {
		racySeeds := 0
		for seed := int64(0); seed < 15; seed++ {
			if _, a := run(t, clean, model, seed); !a.RaceFree() {
				t.Fatalf("%v seed %d: clean locked counter racy", model, seed)
			}
			// The injected race is dynamic: it occurs only in executions
			// where another thread's access is concurrent with the
			// unlocked access, so count racy seeds rather than requiring
			// every seed to race.
			if _, a := run(t, buggy, model, seed); !a.RaceFree() {
				racySeeds++
			}
		}
		if racySeeds == 0 {
			t.Fatalf("%v: buggy locked counter never raced in 15 seeds", model)
		}
	}
}

func TestLockedCounterFinalValue(t *testing.T) {
	w := LockedCounter(3, 4, -1)
	for _, model := range memmodel.All {
		for seed := int64(0); seed < 10; seed++ {
			r, _ := run(t, w, model, seed)
			if r.FinalMemory[0] != 12 {
				t.Fatalf("%v seed %d: counter = %d, want 12", model, seed, r.FinalMemory[0])
			}
		}
	}
}

func TestDekkerCorrectUnderSC(t *testing.T) {
	const iters = 3
	w := Dekker(iters)
	for seed := int64(0); seed < 40; seed++ {
		r, err := sim.Run(w.Prog, sim.Config{Model: memmodel.SC, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Completed {
			continue // livelock window; the scheduler usually breaks symmetry
		}
		if r.FinalMemory[0] != 2*iters {
			t.Fatalf("seed %d: SC Dekker counter = %d, want %d", seed, r.FinalMemory[0], 2*iters)
		}
		// Data races exist even under SC: the flags are data operations.
		a, err := core.Analyze(trace.FromExecution(r.Exec), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if a.RaceFree() {
			t.Fatalf("seed %d: Dekker reported race-free (flags are data ops)", seed)
		}
	}
}

func TestDekkerBrokenOnWeakModels(t *testing.T) {
	const iters = 3
	w := Dekker(iters)
	for _, model := range []memmodel.Model{memmodel.WO, memmodel.RCsc} {
		broken := false
		for seed := int64(0); seed < 300 && !broken; seed++ {
			r, err := sim.Run(w.Prog, sim.Config{Model: model, Seed: seed, RetireProb: 0.1})
			if err != nil {
				t.Fatal(err)
			}
			if r.Completed && r.FinalMemory[0] != 2*iters {
				broken = true
			}
		}
		if !broken {
			t.Fatalf("%v: Dekker never lost an update in 300 seeds", model)
		}
	}
}

func TestDekkerFencedCorrectEverywhereYetRacy(t *testing.T) {
	const iters = 3
	w := DekkerFenced(iters)
	for _, model := range memmodel.All {
		for seed := int64(0); seed < 20; seed++ {
			r, err := sim.Run(w.Prog, sim.Config{Model: model, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if !r.Completed {
				continue
			}
			if r.FinalMemory[0] != 2*iters {
				t.Fatalf("%v seed %d: counter = %d, want %d (fences must restore exclusion)",
					model, seed, r.FinalMemory[0], 2*iters)
			}
			a, err := core.Analyze(trace.FromExecution(r.Exec), core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if a.RaceFree() {
				t.Fatalf("%v seed %d: fenced Dekker reported race-free — flags are data ops", model, seed)
			}
		}
	}
}

func TestTasPublishPairingPolicies(t *testing.T) {
	w := TasPublish(3)
	for _, model := range memmodel.All {
		for seed := int64(0); seed < 10; seed++ {
			r, err := sim.Run(w.Prog, sim.Config{Model: model, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			tr := trace.FromExecution(r.Exec)
			cons, err := core.Analyze(tr, core.Options{Pairing: memmodel.ConservativePairing})
			if err != nil {
				t.Fatal(err)
			}
			if cons.RaceFree() {
				t.Fatalf("%v seed %d: conservative pairing missed the payload races", model, seed)
			}
			lib, err := core.Analyze(tr, core.Options{Pairing: memmodel.LiberalPairing})
			if err != nil {
				t.Fatal(err)
			}
			if !lib.RaceFree() {
				t.Fatalf("%v seed %d: liberal pairing reported races", model, seed)
			}
			// Under liberal pairing (valid for WO/DRF0 hardware) P2 always
			// reads the fresh payload on those models.
			if model == memmodel.WO || model == memmodel.DRF0 {
				for _, op := range r.Exec.OpsOf(1) {
					if op.Kind == sim.OpDataRead && op.Value < 100 {
						t.Fatalf("%v seed %d: stale payload read %v despite drained T&S", model, seed, op)
					}
				}
			}
		}
	}
}

func TestWriteBurst(t *testing.T) {
	const cpus, burst, iters = 3, 6, 3
	w := WriteBurst(cpus, burst, iters)
	for _, model := range memmodel.All {
		for seed := int64(0); seed < 8; seed++ {
			r, a := run(t, w, model, seed)
			if !a.RaceFree() {
				t.Fatalf("%v seed %d: write-burst racy", model, seed)
			}
			if r.FinalMemory[0] != cpus*iters {
				t.Fatalf("%v seed %d: counter = %d, want %d", model, seed, r.FinalMemory[0], cpus*iters)
			}
		}
	}
	// RCsc must beat WO here: the burst is pending at acquire time.
	var wo, rcsc int64
	for seed := int64(0); seed < 40; seed++ {
		rw, err := sim.Run(w.Prog, sim.Config{Model: memmodel.WO, Seed: seed, RetireProb: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		rr, err := sim.Run(w.Prog, sim.Config{Model: memmodel.RCsc, Seed: seed, RetireProb: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		wo += rw.Makespan()
		rcsc += rr.Makespan()
	}
	if rcsc >= wo {
		t.Fatalf("RCsc makespan %d not below WO %d on write-burst", rcsc, wo)
	}
}

func TestRaceChainPartitionStructure(t *testing.T) {
	const stages = 4
	w := RaceChain(stages)
	for _, model := range []memmodel.Model{memmodel.SC, memmodel.WO} {
		for seed := int64(0); seed < 15; seed++ {
			_, a := run(t, w, model, seed)
			if len(a.DataRaces) != stages {
				t.Fatalf("%v seed %d: data races = %d, want %d", model, seed, len(a.DataRaces), stages)
			}
			if len(a.Partitions) != stages {
				t.Fatalf("%v seed %d: partitions = %d, want %d", model, seed, len(a.Partitions), stages)
			}
			if len(a.FirstPartitions) != 1 {
				t.Fatalf("%v seed %d: first partitions = %d, want 1", model, seed, len(a.FirstPartitions))
			}
			// The first partition must be the stage-0 race.
			first := a.Partitions[a.FirstPartitions[0]]
			r := a.Races[first.Races[0]]
			if !r.Locs.Contains(0) {
				t.Fatalf("%v seed %d: first partition on %s, want location 0", model, seed, r.Locs)
			}
		}
	}
}

func TestBarrierPhases(t *testing.T) {
	w := BarrierPhases(3)
	for _, model := range memmodel.All {
		for seed := int64(0); seed < 10; seed++ {
			r, a := run(t, w, model, seed)
			if !a.RaceFree() {
				t.Fatalf("%v seed %d: barrier workload racy", model, seed)
			}
			// Phase 2 reads must all see phase-1 values (DRF guarantee).
			for c := 0; c < 3; c++ {
				for _, op := range r.Exec.OpsOf(c) {
					if op.Kind == sim.OpDataRead && op.Value == 0 {
						t.Fatalf("%v seed %d: worker %d read unwritten cell %d", model, seed, c, op.Loc)
					}
				}
			}
		}
	}
}

func TestRandomRaceFreeByConstruction(t *testing.T) {
	for genSeed := int64(0); genSeed < 5; genSeed++ {
		w := Random(RandomParams{Seed: genSeed, CPUs: 3, Segments: 4})
		for _, model := range []memmodel.Model{memmodel.SC, memmodel.WO, memmodel.RCsc} {
			for seed := int64(0); seed < 5; seed++ {
				if _, a := run(t, w, model, seed); !a.RaceFree() {
					t.Fatalf("gen %d %v seed %d: race-free random program reported racy",
						genSeed, model, seed)
				}
			}
		}
	}
}

func TestRandomUnlockedInjectsRaces(t *testing.T) {
	// With every segment unlocked and plenty of shared traffic, races are
	// all but guaranteed; require at least one racy seed per generation.
	for genSeed := int64(0); genSeed < 5; genSeed++ {
		w := Random(RandomParams{
			Seed: genSeed, CPUs: 3, Segments: 5, UnlockedFraction: 1.0, SharedFraction: 0.9,
		})
		racy := false
		for seed := int64(0); seed < 10 && !racy; seed++ {
			_, a := run(t, w, memmodel.WO, seed)
			racy = !a.RaceFree()
		}
		if !racy {
			t.Fatalf("gen %d: fully unlocked random program never raced", genSeed)
		}
	}
}

func TestRandomDeterministicGeneration(t *testing.T) {
	a := Random(RandomParams{Seed: 7})
	b := Random(RandomParams{Seed: 7})
	if a.Prog.Disassemble() != b.Prog.Disassemble() {
		t.Fatal("same seed generated different programs")
	}
	c := Random(RandomParams{Seed: 8})
	if a.Prog.Disassemble() == c.Prog.Disassemble() {
		t.Fatal("different seeds generated identical programs")
	}
}

func TestSharedOwnedPartition(t *testing.T) {
	p := RandomParams{SharedLocs: 7, Locks: 3}
	total := 0
	for l := 0; l < 3; l++ {
		total += sharedOwned(p, l)
	}
	if total != 7 {
		t.Fatalf("lock ownership covers %d locations, want 7", total)
	}
}

func TestWorkloadString(t *testing.T) {
	w := Figure1a()
	if w.String() == "" {
		t.Fatal("empty String")
	}
}

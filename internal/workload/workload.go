// Package workload provides the programs the experiments run: the paper's
// figure examples (Figures 1a, 1b and 2), structured workloads
// (producer/consumer, barrier phases, lock discipline with an injected
// missing-lock bug), and tunable random programs for the benchmark
// harness.
package workload

import (
	"fmt"

	"weakrace/internal/memmodel"
	"weakrace/internal/program"
	"weakrace/internal/sim"
)

// Workload bundles a program with its initial memory and provenance.
type Workload struct {
	Name        string
	Description string
	Prog        *program.Program
	InitMemory  map[program.Addr]int64
}

// Locations of the Figure 1 programs.
const (
	Fig1X = program.Addr(0)
	Fig1Y = program.Addr(1)
	Fig1S = program.Addr(2)
)

// Figure1a is the paper's Figure 1a: P1 writes x then y, P2 reads y then
// x, with no synchronization — every execution has data races.
func Figure1a() *Workload {
	b := program.NewBuilder("figure-1a", 2, 2)
	b.Thread("P1").
		Write(program.At(Fig1X), program.Imm(1)).
		Write(program.At(Fig1Y), program.Imm(1))
	b.Thread("P2").
		Read(0, program.At(Fig1Y)).
		Read(1, program.At(Fig1X))
	return &Workload{
		Name:        "figure-1a",
		Description: "unsynchronized message passing; data races on x and y",
		Prog:        b.MustBuild(),
	}
}

// Figure1b is the paper's Figure 1b: the same data operations ordered by
// an Unset/Test&Set pairing — data-race-free, hence sequentially
// consistent on every weak model.
func Figure1b() *Workload {
	b := program.NewBuilder("figure-1b", 3, 2)
	b.Thread("P1").
		Write(program.At(Fig1X), program.Imm(1)).
		Write(program.At(Fig1Y), program.Imm(1)).
		Unset(program.At(Fig1S))
	b.Thread("P2").
		Label("spin").
		TestAndSet(0, program.At(Fig1S)).
		BranchNotZero(0, "spin").
		Read(0, program.At(Fig1Y)).
		Read(1, program.At(Fig1X))
	return &Workload{
		Name:        "figure-1b",
		Description: "message passing ordered by Unset/Test&Set; data-race-free",
		Prog:        b.MustBuild(),
		InitMemory:  map[program.Addr]int64{Fig1S: 1}, // lock starts held by P1
	}
}

// Layout of the Figure 2 work-queue program.
const (
	Fig2Q      = program.Addr(0) // shared queue cell (holds a region base address)
	Fig2QEmpty = program.Addr(1) // queue-empty flag (1 = empty)
	Fig2S      = program.Addr(2) // the critical-section lock
	// Fig2RegionP3 is the base of P3's work region (Fig2RegionSize cells).
	Fig2RegionP3 = program.Addr(3)
	// Fig2RegionSize is each worker's region length.
	Fig2RegionSize = 4
	// Fig2StaleAddr is the stale value left in Q: a region overlapping
	// P3's (the paper's "37").
	Fig2StaleAddr = Fig2RegionP3 + 2
	// Fig2FreshAddr is the address P1 enqueues: a region disjoint from
	// P3's (the paper's "100").
	Fig2FreshAddr = Fig2RegionP3 + Fig2RegionSize
	// Fig2NumLocations sizes the shared address space.
	Fig2NumLocations = int(Fig2FreshAddr) + Fig2RegionSize + 1
)

// Figure2 is the paper's Figure 2a work-queue fragment with the Test&Set
// instructions missing (the bug):
//
//	P1: enqueue a region address and clear QEmpty, then Unset(S)
//	P2: if QEmpty is clear, dequeue an address, Unset(S), and work on
//	    region [addr, addr+RegionSize)
//	P3: work on its own region, Unset(S), keep working
//
// On a weak model, P1's write to QEmpty can become visible before its
// write to Q; P2 then dequeues the stale address and its region overlaps
// P3's, producing the non-sequentially-consistent data races of Figure 2b.
func Figure2() *Workload {
	b := program.NewBuilder("figure-2", Fig2NumLocations, 4)

	b.Thread("P1").
		// compute addr of region on which to work; { missing Test&Set }
		Write(program.At(Fig2Q), program.Imm(int64(Fig2FreshAddr))). // Enqueue(addr)
		Write(program.At(Fig2QEmpty), program.Imm(0)).               // QEmpty := False
		Unset(program.At(Fig2S))

	p2 := b.Thread("P2")
	p2. // { missing Test&Set }
		Read(0, program.At(Fig2QEmpty)).
		BranchNotZero(0, "else").
		Read(1, program.At(Fig2Q)). // addr := Dequeue()
		Unset(program.At(Fig2S))
	for i := 0; i < Fig2RegionSize; i++ {
		p2.Write(program.AtReg(1, program.Addr(i)), program.Imm(200+int64(i)))
	}
	p2.Jump("end").
		Label("else").
		Label("end")

	p3 := b.Thread("P3")
	for i := 0; i < Fig2RegionSize; i++ {
		p3.Write(program.At(Fig2RegionP3+program.Addr(i)), program.Imm(300+int64(i)))
	}
	p3.Unset(program.At(Fig2S))
	// P3 keeps working on its region after the Unset (Figure 2b shows
	// read(37,...) then write(38,...) after the release).
	p3.Read(2, program.At(Fig2StaleAddr)).
		Write(program.At(Fig2StaleAddr+1), program.FromReg(2))

	return &Workload{
		Name: "figure-2",
		Description: "work-queue fragment with missing Test&Set; stale dequeue " +
			"overlaps P3's region on weak models",
		Prog: b.MustBuild(),
		InitMemory: map[program.Addr]int64{
			Fig2Q:      int64(Fig2StaleAddr), // old value left in the queue cell
			Fig2QEmpty: 1,                    // queue starts empty
		},
	}
}

// Fig2Anomaly classifies one Figure 2 execution.
type Fig2Anomaly struct {
	// TookQueue reports whether P2 saw QEmpty clear and dequeued.
	TookQueue bool
	// StaleDequeue reports whether the dequeued address was the stale one
	// (the sequential-consistency violation of Figure 2b).
	StaleDequeue bool
}

// ClassifyFig2 inspects an execution of the Figure2 workload.
func ClassifyFig2(e *sim.Execution) Fig2Anomaly {
	var out Fig2Anomaly
	for _, op := range e.OpsOf(1) {
		if op.Kind == sim.OpDataRead && op.Loc == Fig2Q {
			out.TookQueue = true
			out.StaleDequeue = op.Value == int64(Fig2StaleAddr)
		}
	}
	return out
}

// Fig2StaleScript returns scheduler decisions that deterministically
// construct the Figure 2b anomaly on a weak model: P1 buffers both its
// writes, its QEmpty write retires first (the reordering), and P2 reads
// the cleared flag and then the still-stale queue cell before P1's queue
// write becomes visible. After the script the random scheduler finishes
// the run.
func Fig2StaleScript() []sim.Decision {
	return []sim.Decision{
		sim.Exec(0),               // P1: write Q (buffered)
		sim.Exec(0),               // P1: write QEmpty (buffered)
		sim.Retire(0, Fig2QEmpty), // the reordering: QEmpty commits before Q
		sim.Exec(1),               // P2: read QEmpty = 0
		sim.Exec(1),               // P2: branch (queue non-empty path)
		sim.Exec(1),               // P2: read Q = stale address
	}
}

// RunFig2Stale deterministically reproduces the Figure 2b anomaly via
// Fig2StaleScript on the given weak model.
func RunFig2Stale(model memmodel.Model, seed int64) (*sim.Result, error) {
	w := Figure2()
	r, err := sim.Run(w.Prog, sim.Config{
		Model: model, Seed: seed,
		InitMemory: w.InitMemory,
		Script:     Fig2StaleScript(),
	})
	if err != nil {
		return nil, err
	}
	if an := ClassifyFig2(r.Exec); !an.StaleDequeue {
		return nil, fmt.Errorf("workload: scripted Figure 2 run did not produce the stale dequeue")
	}
	return r, nil
}

// FindFig2StaleSeed searches seeds for an execution of the Figure2
// workload that reproduces the Figure 2b anomaly (stale dequeue). cfg.Seed
// is overridden; the anomaly needs a weak cfg.Model. A RetireProb around
// 0.15 keeps P1's queue write buffered longest; the anomaly occurs in
// roughly 0.1% of seeds.
func FindFig2StaleSeed(cfg sim.Config, maxSeed int64) (*sim.Result, int64, bool) {
	w := Figure2()
	cfg.InitMemory = w.InitMemory
	for seed := int64(0); seed < maxSeed; seed++ {
		cfg.Seed = seed
		r, err := sim.Run(w.Prog, cfg)
		if err != nil {
			return nil, 0, false
		}
		if ClassifyFig2(r.Exec).StaleDequeue {
			return r, seed, true
		}
	}
	return nil, 0, false
}

// String names the workload.
func (w *Workload) String() string {
	return fmt.Sprintf("%s: %s", w.Name, w.Description)
}

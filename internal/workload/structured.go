package workload

import (
	"fmt"

	"weakrace/internal/program"
)

// ProducerConsumer builds a flag-synchronized single-producer,
// single-consumer pipeline: the producer writes items items into a ring of
// slot cells and publishes each with a release write to the item's flag;
// the consumer spins on an acquire read of the flag, then reads the slot.
// Race-free when synced is true; with synced false the flags are written
// and read with plain data operations, so every item is a data race.
func ProducerConsumer(items int, synced bool) *Workload {
	// Layout: slots at [0, items), flags at [items, 2*items).
	b := program.NewBuilder(fmt.Sprintf("prodcons-%d-synced=%v", items, synced), 2*items, 3)
	prod := b.Thread("producer")
	for i := 0; i < items; i++ {
		prod.Write(program.At(program.Addr(i)), program.Imm(int64(100+i)))
		if synced {
			prod.SyncWrite(program.At(program.Addr(items+i)), program.Imm(1))
		} else {
			prod.Write(program.At(program.Addr(items+i)), program.Imm(1))
		}
	}
	cons := b.Thread("consumer")
	for i := 0; i < items; i++ {
		spin := fmt.Sprintf("spin%d", i)
		cons.Label(spin)
		if synced {
			cons.SyncRead(0, program.At(program.Addr(items+i)))
		} else {
			cons.Read(0, program.At(program.Addr(items+i)))
		}
		cons.BranchZero(0, spin).
			Read(1, program.At(program.Addr(i)))
	}
	kind := "release/acquire flags; race-free"
	if !synced {
		kind = "plain flags; races on every item"
	}
	return &Workload{
		Name:        fmt.Sprintf("producer-consumer(items=%d,synced=%v)", items, synced),
		Description: "single-producer single-consumer pipeline, " + kind,
		Prog:        b.MustBuild(),
	}
}

// LockedCounter builds cpus threads that each increment a shared counter
// iters times inside a Test&Set/Unset critical section. If buggyCPU is in
// range, that thread skips the lock acquisition on its final iteration —
// the paper's Figure 2 bug class (a missing Test&Set) — injecting data
// races on the counter.
func LockedCounter(cpus, iters, buggyCPU int) *Workload {
	const counter, lock = program.Addr(0), program.Addr(1)
	name := fmt.Sprintf("locked-counter(cpus=%d,iters=%d,buggy=%d)", cpus, iters, buggyCPU)
	b := program.NewBuilder(name, 2, 3)
	for i := 0; i < cpus; i++ {
		t := b.Thread(fmt.Sprintf("P%d", i+1))
		t.Const(2, int64(iters)).
			Label("loop")
		if i == buggyCPU {
			// The injected bug: skip the Test&Set on the last iteration
			// (r2 counts down from iters; the last iteration has r2 == 1).
			t.Const(1, 2).
				BranchLess(2, 1, "crit") // r2 < 2: last iteration, skip lock
		}
		t.Label("spin").
			TestAndSet(0, program.At(lock)).
			BranchNotZero(0, "spin").
			Label("crit").
			Read(0, program.At(counter)).
			AddImm(0, 0, 1).
			Write(program.At(counter), program.FromReg(0))
		if i == buggyCPU {
			// Only release if the lock was actually taken.
			t.Const(1, 2).
				BranchLess(2, 1, "next").
				Unset(program.At(lock)).
				Label("next")
		} else {
			t.Unset(program.At(lock))
		}
		t.AddImm(2, 2, -1).
			BranchNotZero(2, "loop")
	}
	desc := "fully locked shared counter; race-free"
	if buggyCPU >= 0 && buggyCPU < cpus {
		desc = fmt.Sprintf("shared counter with a missing Test&Set on P%d's last iteration", buggyCPU+1)
	}
	return &Workload{Name: name, Description: desc, Prog: b.MustBuild()}
}

// Dekker builds the two-thread entry protocol of Dekker/Peterson-style
// mutual exclusion implemented with ORDINARY data operations: each thread
// raises its own flag, checks the other's, and enters the critical
// section (incrementing a shared counter non-atomically) only if the
// other flag is down; otherwise it retreats and retries. On sequentially
// consistent hardware the protocol excludes; on any weak model both
// flag reads can bypass the buffered flag writes (the SB relaxation), so
// both threads can enter together and updates are lost.
//
// The workload is the paper's cautionary tale in executable form:
// synchronizing through data operations IS a data race (the flags are
// data, so every execution is racy), and weak hardware is then free to
// break the algorithm. The detector flags the flag accesses either way.
func Dekker(iters int) *Workload {
	// Layout: counter 0, flag[0] 1, flag[1] 2.
	const counter = program.Addr(0)
	name := fmt.Sprintf("dekker(iters=%d)", iters)
	b := program.NewBuilder(name, 3, 3)
	for me := 0; me < 2; me++ {
		mine := program.Addr(1 + me)
		theirs := program.Addr(1 + (1 - me))
		t := b.Thread(fmt.Sprintf("P%d", me+1))
		t.Const(2, int64(iters)).
			Label("try").
			Write(program.At(mine), program.Imm(1)). // raise my flag (a data write!)
			Read(0, program.At(theirs)).             // check theirs (a data read!)
			BranchZero(0, "enter").
			Write(program.At(mine), program.Imm(0)). // contention: retreat and retry
			Jump("try").
			Label("enter").
			Read(0, program.At(counter)).
			AddImm(0, 0, 1).
			Write(program.At(counter), program.FromReg(0)).
			Write(program.At(mine), program.Imm(0)). // lower my flag
			AddImm(2, 2, -1).
			BranchNotZero(2, "try")
	}
	return &Workload{
		Name: name,
		Description: "Dekker-style mutual exclusion via data operations; " +
			"correct under SC, broken (and racy) on weak models",
		Prog: b.MustBuild(),
	}
}

// DekkerFenced is Dekker with a full fence between raising the own flag
// and reading the other's. The fence kills the store-buffer relaxation,
// so mutual exclusion works again on every weak model — but the flags are
// STILL ordinary data operations, so the detector still reports data
// races on every execution. This is the paper's §2.1 point made
// executable: correctness under a particular hardware is not race
// freedom; the DRF models only promise sequential consistency when
// synchronization is *recognized by the hardware* (Test&Set/Unset,
// acquire/release), which is also exactly what the detector can see.
func DekkerFenced(iters int) *Workload {
	const counter = program.Addr(0)
	name := fmt.Sprintf("dekker-fenced(iters=%d)", iters)
	b := program.NewBuilder(name, 3, 3)
	for me := 0; me < 2; me++ {
		mine := program.Addr(1 + me)
		theirs := program.Addr(1 + (1 - me))
		t := b.Thread(fmt.Sprintf("P%d", me+1))
		t.Const(2, int64(iters)).
			Label("try").
			Write(program.At(mine), program.Imm(1)).
			Fence(). // make the flag write globally visible before checking
			Read(0, program.At(theirs)).
			BranchZero(0, "enter").
			Write(program.At(mine), program.Imm(0)).
			Jump("try").
			Label("enter").
			Read(0, program.At(counter)).
			AddImm(0, 0, 1).
			Write(program.At(counter), program.FromReg(0)).
			Fence(). // counter visible before the flag drops
			Write(program.At(mine), program.Imm(0)).
			AddImm(2, 2, -1).
			BranchNotZero(2, "try")
	}
	return &Workload{
		Name: name,
		Description: "Dekker with fences: mutually exclusive on all models, " +
			"yet every execution still has data races (flags are data ops)",
		Prog: b.MustBuild(),
	}
}

// FlagHandoff transfers ownership of a buffer through a release/acquire
// flag: P1 fills the buffer and releases the flag; P2 acquires it and
// writes the buffer as the new owner. Race-free under happens-before —
// and the canonical false positive for lockset-discipline checkers, since
// no lock ever protects the buffer.
func FlagHandoff(cells int) *Workload {
	// Layout: buffer [0, cells), flag at cells.
	flag := program.Addr(cells)
	name := fmt.Sprintf("flag-handoff(cells=%d)", cells)
	b := program.NewBuilder(name, cells+1, 2)
	p1 := b.Thread("P1")
	for i := 0; i < cells; i++ {
		p1.Write(program.At(program.Addr(i)), program.Imm(int64(10+i)))
	}
	p1.SyncWrite(program.At(flag), program.Imm(1))
	p2 := b.Thread("P2")
	p2.Label("wait").
		SyncRead(0, program.At(flag)).
		BranchZero(0, "wait")
	for i := 0; i < cells; i++ {
		p2.Read(1, program.At(program.Addr(i))).
			AddImm(1, 1, 1).
			Write(program.At(program.Addr(i)), program.FromReg(1))
	}
	return &Workload{
		Name: name,
		Description: "buffer ownership handoff via release/acquire flag; " +
			"race-free under happens-before, flagged by lockset discipline",
		Prog: b.MustBuild(),
	}
}

// TasPublish publishes data through a Test&Set's write: P1 writes the
// payload then executes Test&Set(flag) whose write half sets the flag; P2
// spins on an acquire read of the flag and then reads the payload. Under
// the paper's conservative pairing the Test&Set write is not a release,
// so the payload accesses are reported as a data race; under
// LiberalPairing (sound on WO/DRF0 hardware, where every synchronization
// operation drains the buffer) they are ordered and race-free. The
// pairing-policy ablation (experiment T8) quantifies the difference.
func TasPublish(payloadCells int) *Workload {
	// Layout: payload [0, payloadCells), flag at payloadCells.
	flag := program.Addr(payloadCells)
	name := fmt.Sprintf("tas-publish(cells=%d)", payloadCells)
	b := program.NewBuilder(name, payloadCells+1, 2)
	p1 := b.Thread("P1")
	for i := 0; i < payloadCells; i++ {
		p1.Write(program.At(program.Addr(i)), program.Imm(int64(100+i)))
	}
	p1.TestAndSet(0, program.At(flag)) // the write half raises the flag
	p2 := b.Thread("P2")
	p2.Label("spin").
		SyncRead(0, program.At(flag)).
		BranchZero(0, "spin")
	for i := 0; i < payloadCells; i++ {
		p2.Read(1, program.At(program.Addr(i)))
	}
	return &Workload{
		Name: name,
		Description: "payload published through a Test&Set write: racy under " +
			"conservative pairing, race-free under liberal pairing",
		Prog: b.MustBuild(),
	}
}

// WriteBurst builds cpus threads that each repeat iters times: write a
// burst of private cells, then enter a Test&Set/Unset critical section and
// bump a shared counter. Race-free. The burst of private writes is
// pending in the store buffer when the acquire executes, so this workload
// separates the models' drain rules: WO/DRF0 stall at the acquire, while
// RCsc/DRF1 let the acquire proceed and only pay at the release — the
// extra performance the acquire/release distinction buys (§2.2).
func WriteBurst(cpus, burst, iters int) *Workload {
	// Layout: counter 0, lock 1, private regions from 2.
	const counter, lock = program.Addr(0), program.Addr(1)
	name := fmt.Sprintf("write-burst(cpus=%d,burst=%d,iters=%d)", cpus, burst, iters)
	b := program.NewBuilder(name, 2+cpus*burst, 3)
	for c := 0; c < cpus; c++ {
		base := 2 + c*burst
		t := b.Thread(fmt.Sprintf("P%d", c+1))
		t.Const(2, int64(iters)).
			Label("loop")
		for i := 0; i < burst; i++ {
			t.Write(program.At(program.Addr(base+i)), program.FromReg(2))
		}
		t.Label("spin").
			TestAndSet(0, program.At(lock)).
			BranchNotZero(0, "spin").
			Read(0, program.At(counter)).
			AddImm(0, 0, 1).
			Write(program.At(counter), program.FromReg(0)).
			Unset(program.At(lock)).
			AddImm(2, 2, -1).
			BranchNotZero(2, "loop")
	}
	return &Workload{
		Name:        name,
		Description: "private write bursts before locked counter updates; race-free",
		Prog:        b.MustBuild(),
	}
}

// RaceChain builds two threads racing in a sequence of stages: in stage k,
// P1 writes location k and P2 reads it, each followed by an (unpaired)
// release that splits the stages into separate computation events. Every
// stage races, but each stage's race is reachable in the augmented graph
// from the previous one — so the detector must report exactly one first
// partition (stage 0) and order the other stages after it. This is the
// paper's artifact-chain pattern: later races happen only downstream of
// the first bug, and first-partition reporting narrows the report from
// stages races to one.
func RaceChain(stages int) *Workload {
	// Layout: data locations [0, stages); release locations [stages, 3*stages).
	b := program.NewBuilder(fmt.Sprintf("race-chain-%d", stages), 3*stages, 2)
	p1 := b.Thread("P1")
	p2 := b.Thread("P2")
	for k := 0; k < stages; k++ {
		p1.Write(program.At(program.Addr(k)), program.Imm(int64(k+1))).
			Unset(program.At(program.Addr(stages + 2*k)))
		p2.Read(0, program.At(program.Addr(k))).
			Unset(program.At(program.Addr(stages + 2*k + 1)))
	}
	return &Workload{
		Name:        fmt.Sprintf("race-chain(stages=%d)", stages),
		Description: "a chain of dependent races; only stage 0 is a first partition",
		Prog:        b.MustBuild(),
	}
}

// BarrierPhases builds workers+1 threads: workers each write their own
// cell in phase 1, signal completion with a release write to a per-worker
// done flag, and spin on an acquire of a go flag; a coordinator thread
// acquires every done flag, then releases the go flag; in phase 2 every
// worker reads every other worker's cell. Race-free: all cross-thread
// access is ordered through the coordinator's flags.
func BarrierPhases(workers int) *Workload {
	// Layout: cells [0,workers), done flags [workers, 2w), go flag 2w.
	goFlag := program.Addr(2 * workers)
	b := program.NewBuilder(fmt.Sprintf("barrier-%d", workers), 2*workers+1, 3)
	for i := 0; i < workers; i++ {
		t := b.Thread(fmt.Sprintf("worker%d", i+1))
		t.Write(program.At(program.Addr(i)), program.Imm(int64(10+i))).
			SyncWrite(program.At(program.Addr(workers+i)), program.Imm(1)).
			Label("wait").
			SyncRead(0, program.At(goFlag)).
			BranchZero(0, "wait")
		for j := 0; j < workers; j++ {
			if j != i {
				t.Read(1, program.At(program.Addr(j)))
			}
		}
	}
	coord := b.Thread("coordinator")
	for i := 0; i < workers; i++ {
		spin := fmt.Sprintf("wait%d", i)
		coord.Label(spin).
			SyncRead(0, program.At(program.Addr(workers+i))).
			BranchZero(0, spin)
	}
	coord.SyncWrite(program.At(goFlag), program.Imm(1))
	return &Workload{
		Name:        fmt.Sprintf("barrier(workers=%d)", workers),
		Description: "two-phase computation separated by a flag barrier; race-free",
		Prog:        b.MustBuild(),
	}
}

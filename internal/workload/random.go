package workload

import (
	"fmt"
	"math/rand"

	"weakrace/internal/program"
)

// RandomParams tunes the random program generator.
type RandomParams struct {
	// CPUs is the number of threads (default 4).
	CPUs int
	// SharedLocs is the number of lock-protected shared locations
	// (default 8).
	SharedLocs int
	// PrivateLocs is the number of per-thread private locations
	// (default 4).
	PrivateLocs int
	// Locks is the number of Test&Set/Unset locks; shared location l is
	// protected by lock l mod Locks (default 2).
	Locks int
	// Segments is the number of access segments per thread (default 6).
	Segments int
	// OpsPerSegment is the number of data operations per segment
	// (default 4).
	OpsPerSegment int
	// UnlockedFraction is the probability that a segment touching shared
	// locations skips its lock — injecting data races. 0 yields a
	// race-free program (default 0).
	UnlockedFraction float64
	// SharedFraction is the probability a data operation targets a shared
	// (rather than private) location (default 0.5).
	SharedFraction float64
	// Seed drives generation.
	Seed int64
}

func (p RandomParams) withDefaults() RandomParams {
	if p.CPUs == 0 {
		p.CPUs = 4
	}
	if p.SharedLocs == 0 {
		p.SharedLocs = 8
	}
	if p.PrivateLocs == 0 {
		p.PrivateLocs = 4
	}
	if p.Locks == 0 {
		p.Locks = 2
	}
	if p.Segments == 0 {
		p.Segments = 6
	}
	if p.SharedLocs < p.Locks {
		// Every lock must own at least one shared location.
		p.SharedLocs = p.Locks
	}
	if p.OpsPerSegment == 0 {
		p.OpsPerSegment = 4
	}
	if p.SharedFraction == 0 {
		p.SharedFraction = 0.5
	}
	return p
}

// Random generates a multi-threaded program of lock-protected segments.
// Each segment picks one lock, takes it (unless the segment is chosen
// unlocked by UnlockedFraction), performs reads and writes on shared
// locations owned by that lock plus private locations, and releases.
//
// With UnlockedFraction == 0 the program is data-race-free by
// construction: every shared location is only ever touched under its
// owning lock. Any positive fraction injects real data races.
func Random(p RandomParams) *Workload {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	// Layout: locks [0, Locks), shared [Locks, Locks+SharedLocs),
	// private [Locks+SharedLocs + cpu*PrivateLocs, ...).
	sharedBase := p.Locks
	privBase := p.Locks + p.SharedLocs
	numLocs := privBase + p.CPUs*p.PrivateLocs
	name := fmt.Sprintf("random(cpus=%d,segs=%d,unlocked=%.2f,seed=%d)",
		p.CPUs, p.Segments, p.UnlockedFraction, p.Seed)
	b := program.NewBuilder(name, numLocs, 4)

	for c := 0; c < p.CPUs; c++ {
		t := b.Thread(fmt.Sprintf("P%d", c+1))
		for s := 0; s < p.Segments; s++ {
			lock := rng.Intn(p.Locks)
			locked := rng.Float64() >= p.UnlockedFraction
			if locked {
				spin := fmt.Sprintf("spin%d", s)
				t.Label(spin).
					TestAndSet(0, program.At(program.Addr(lock))).
					BranchNotZero(0, spin)
			}
			for o := 0; o < p.OpsPerSegment; o++ {
				var loc program.Addr
				if rng.Float64() < p.SharedFraction {
					// A shared location owned by this segment's lock.
					k := rng.Intn((p.SharedLocs + p.Locks - 1 - lock) / p.Locks)
					loc = program.Addr(sharedBase + lock + k*p.Locks)
				} else {
					loc = program.Addr(privBase + c*p.PrivateLocs + rng.Intn(p.PrivateLocs))
				}
				if rng.Intn(2) == 0 {
					t.Read(1, program.At(loc))
				} else {
					t.Write(program.At(loc), program.Imm(rng.Int63n(1000)))
				}
			}
			if locked {
				t.Unset(program.At(program.Addr(lock)))
			}
		}
	}
	desc := "random lock-protected segments"
	if p.UnlockedFraction > 0 {
		desc = fmt.Sprintf("random segments, %.0f%% unlocked (racy)", p.UnlockedFraction*100)
	} else {
		desc += " (race-free by construction)"
	}
	return &Workload{Name: name, Description: desc, Prog: b.MustBuild()}
}

// sharedOwned returns how many shared locations lock owns (used by tests).
func sharedOwned(p RandomParams, lock int) int {
	p = p.withDefaults()
	return (p.SharedLocs + p.Locks - 1 - lock) / p.Locks
}

package litmus

import (
	"weakrace/internal/memmodel"
	"weakrace/internal/program"
	"weakrace/internal/workload"
)

func weakOnly(m memmodel.Model) bool { return m.Weak() }

// storeReorderOnly admits the models whose store buffers retire out of
// order — the paper's four weak models, but not TSO's FIFO buffer.
func storeReorderOnly(m memmodel.Model) bool { return m.AllowsStoreReordering() }

func never(memmodel.Model) bool { return false }

func wl(name string, prog *program.Program, init map[program.Addr]int64) *workload.Workload {
	return &workload.Workload{Name: name, Prog: prog, InitMemory: init}
}

// Catalog returns the litmus tests, each annotated with the outcomes the
// simulator's models allow.
func Catalog() []*Test {
	return []*Test{
		storeBuffering(),
		messagePassing(),
		messagePassingSynced(),
		messagePassingFenced(),
		loadBuffering(),
		coherenceRR(),
		coherenceWW(),
		iriw(),
		wrc(),
		testAndSetAtomicity(),
	}
}

// SB: store buffering. Both processors may read 0 when their own write is
// still buffered — the signature relaxation of write buffering, allowed
// on every weak model and forbidden under SC.
func storeBuffering() *Test {
	b := program.NewBuilder("litmus-sb", 2, 1)
	b.Thread("P1").
		Write(program.At(0), program.Imm(1)).
		Read(0, program.At(1))
	b.Thread("P2").
		Write(program.At(1), program.Imm(1)).
		Read(0, program.At(0))
	return &Test{
		Name:        "SB",
		Description: "store buffering: Wx;Ry ∥ Wy;Rx — may both read 0?",
		Workload:    wl("litmus-sb", b.MustBuild(), nil),
		Observables: []Observable{
			{Name: "r1", CPU: 0, Nth: 0},
			{Name: "r2", CPU: 1, Nth: 0},
		},
		Relaxed:          "r1=0 r2=0",
		AllowedOn:        weakOnly,
		ExpectObservable: true,
		RetireProb:       0.05,
	}
}

// MP: message passing without synchronization (the paper's Figure 1a).
// The reader may see the flag but stale data when the writer's buffer
// retires out of order.
func messagePassing() *Test {
	w := workload.Figure1a()
	return &Test{
		Name:        "MP",
		Description: "message passing, no sync: Wx;Wy ∥ Ry;Rx — flag without data?",
		Workload:    w,
		Observables: []Observable{
			{Name: "ry", CPU: 1, Nth: 0},
			{Name: "rx", CPU: 1, Nth: 1},
		},
		Relaxed:          "rx=0 ry=1",
		AllowedOn:        storeReorderOnly, // TSO's FIFO buffer forbids it
		ExpectObservable: true,
		// Background retirement must commit y early while x stays
		// buffered; the default retirement rate maximizes that window.
		RetireProb: 0.3,
	}
}

// MP+sync: the paper's Figure 1b. Proper Unset/Test&Set pairing forbids
// the relaxed outcome on every model — the DRF guarantee.
func messagePassingSynced() *Test {
	w := workload.Figure1b()
	return &Test{
		Name:        "MP+sync",
		Description: "message passing through Unset/Test&Set — stale data forbidden everywhere",
		Workload:    w,
		Observables: []Observable{
			{Name: "ry", CPU: 1, Nth: 0},
			{Name: "rx", CPU: 1, Nth: 1},
		},
		Relaxed:   "rx=0 ry=1",
		AllowedOn: never,
	}
}

// MP+fence: a fence between the writes drains the buffer, restoring the
// write order; the simulator never reorders reads, so the reader needs no
// fence. Forbidden on every model.
func messagePassingFenced() *Test {
	b := program.NewBuilder("litmus-mp-fence", 2, 2)
	b.Thread("P1").
		Write(program.At(0), program.Imm(1)).
		Fence().
		Write(program.At(1), program.Imm(1))
	b.Thread("P2").
		Read(0, program.At(1)).
		Read(1, program.At(0))
	return &Test{
		Name:        "MP+fence",
		Description: "message passing with a writer-side fence — stale data forbidden",
		Workload:    wl("litmus-mp-fence", b.MustBuild(), nil),
		Observables: []Observable{
			{Name: "ry", CPU: 1, Nth: 0},
			{Name: "rx", CPU: 1, Nth: 1},
		},
		Relaxed:   "rx=0 ry=1",
		AllowedOn: never,
	}
}

// LB: load buffering. Seeing each other's later writes would require read
// speculation, which the simulator does not implement (its honest
// configurations execute reads at issue). Forbidden on every model —
// stronger than the WO specification requires, which is sound for the
// DRF guarantee.
func loadBuffering() *Test {
	b := program.NewBuilder("litmus-lb", 2, 1)
	b.Thread("P1").
		Read(0, program.At(0)).
		Write(program.At(1), program.Imm(1))
	b.Thread("P2").
		Read(0, program.At(1)).
		Write(program.At(0), program.Imm(1))
	return &Test{
		Name:        "LB",
		Description: "load buffering: Rx;Wy ∥ Ry;Wx — may both read 1?",
		Workload:    wl("litmus-lb", b.MustBuild(), nil),
		Observables: []Observable{
			{Name: "r1", CPU: 0, Nth: 0},
			{Name: "r2", CPU: 1, Nth: 0},
		},
		Relaxed:   "r1=1 r2=1",
		AllowedOn: never,
	}
}

// CoRR: coherence of read-read. Two reads of one location by one
// processor never observe values moving backwards. Forbidden everywhere
// (per-location write order is FIFO and reads execute in order).
func coherenceRR() *Test {
	b := program.NewBuilder("litmus-corr", 1, 2)
	b.Thread("P1").
		Write(program.At(0), program.Imm(1))
	b.Thread("P2").
		Read(0, program.At(0)).
		Read(1, program.At(0))
	return &Test{
		Name:        "CoRR",
		Description: "coherence: P2 reads x twice — new then old forbidden",
		Workload:    wl("litmus-corr", b.MustBuild(), nil),
		Observables: []Observable{
			{Name: "ra", CPU: 1, Nth: 0},
			{Name: "rb", CPU: 1, Nth: 1},
		},
		Relaxed:   "ra=1 rb=0",
		AllowedOn: never,
	}
}

// CoWW: coherence of write-write. A processor's two writes to one
// location always commit in program order; a third party's final read
// (after joining through sync) sees the second value. We check the final
// memory indirectly through a reader synchronized by a release.
func coherenceWW() *Test {
	b := program.NewBuilder("litmus-coww", 3, 2)
	b.Thread("P1").
		Write(program.At(0), program.Imm(1)).
		Write(program.At(0), program.Imm(2)).
		Unset(program.At(1))
	b.Thread("P2").
		Label("spin").
		TestAndSet(0, program.At(1)).
		BranchNotZero(0, "spin").
		Read(0, program.At(0))
	return &Test{
		Name:        "CoWW",
		Description: "coherence: Wx=1;Wx=2;Unset ∥ acquire;Rx — reading 1 forbidden",
		Workload:    wl("litmus-coww", b.MustBuild(), map[program.Addr]int64{1: 1}),
		Observables: []Observable{
			{Name: "rx", CPU: 1, Nth: 0},
		},
		Relaxed:   "rx=1",
		AllowedOn: never,
	}
}

// IRIW: independent reads of independent writes. Observing the two writes
// in opposite orders requires non-multi-copy-atomic stores; the simulator
// commits writes atomically to one shared memory, so this is forbidden on
// every model.
func iriw() *Test {
	b := program.NewBuilder("litmus-iriw", 2, 2)
	b.Thread("P1").Write(program.At(0), program.Imm(1))
	b.Thread("P2").Write(program.At(1), program.Imm(1))
	b.Thread("P3").
		Read(0, program.At(0)).
		Read(1, program.At(1))
	b.Thread("P4").
		Read(0, program.At(1)).
		Read(1, program.At(0))
	return &Test{
		Name:        "IRIW",
		Description: "independent reads of independent writes — opposite orders forbidden",
		Workload:    wl("litmus-iriw", b.MustBuild(), nil),
		Observables: []Observable{
			{Name: "p3x", CPU: 2, Nth: 0},
			{Name: "p3y", CPU: 2, Nth: 1},
			{Name: "p4y", CPU: 3, Nth: 0},
			{Name: "p4x", CPU: 3, Nth: 1},
		},
		Relaxed:   "p3x=1 p3y=0 p4x=0 p4y=1",
		AllowedOn: never,
	}
}

// WRC: write-to-read causality. P2 observes P1's write and then writes y;
// P3 observes y and must then observe x (cumulativity). The simulator's
// single shared memory with in-order reads forbids the relaxed outcome on
// every model.
func wrc() *Test {
	b := program.NewBuilder("litmus-wrc", 2, 2)
	b.Thread("P1").Write(program.At(0), program.Imm(1))
	b.Thread("P2").
		Read(0, program.At(0)).
		Write(program.At(1), program.FromReg(0))
	b.Thread("P3").
		Read(0, program.At(1)).
		Read(1, program.At(0))
	return &Test{
		Name:        "WRC",
		Description: "write-to-read causality: P3 sees y=1 but x=0 forbidden",
		Workload:    wl("litmus-wrc", b.MustBuild(), nil),
		Observables: []Observable{
			{Name: "ry", CPU: 2, Nth: 0},
			{Name: "rx", CPU: 2, Nth: 1},
		},
		Relaxed:   "rx=0 ry=1",
		AllowedOn: never,
	}
}

// Test&Set atomicity: two competing Test&Sets on a free lock can never
// both read 0. Each processor publishes what it read through a private
// cell so the outcome is observable via data reads.
func testAndSetAtomicity() *Test {
	b := program.NewBuilder("litmus-tas", 3, 2)
	b.Thread("P1").
		TestAndSet(0, program.At(0)).
		Write(program.At(1), program.FromReg(0)).
		Read(1, program.At(1))
	b.Thread("P2").
		TestAndSet(0, program.At(0)).
		Write(program.At(2), program.FromReg(0)).
		Read(1, program.At(2))
	return &Test{
		Name:        "TAS",
		Description: "Test&Set atomicity: both winning a free lock forbidden",
		Workload:    wl("litmus-tas", b.MustBuild(), nil),
		Observables: []Observable{
			{Name: "w1", CPU: 0, Nth: 0},
			{Name: "w2", CPU: 1, Nth: 0},
		},
		Relaxed:   "w1=0 w2=0",
		AllowedOn: never,
	}
}

// Package litmus validates the simulator's memory-model semantics with
// the classic litmus tests (store buffering, message passing, coherence,
// load buffering, IRIW, Test&Set atomicity). Each test names a relaxed
// outcome and states, per model, whether the simulated hardware may
// exhibit it; the catalog doubles as executable documentation of exactly
// which relaxations the simulator implements (write buffering with
// non-FIFO retirement and read bypassing) and which it does not (read
// reordering, value speculation, non-multi-copy-atomic stores).
package litmus

import (
	"fmt"
	"sort"
	"strings"

	"weakrace/internal/memmodel"
	"weakrace/internal/sim"
	"weakrace/internal/workload"
)

// Observable names one read whose value is part of a test's outcome: the
// nth data read executed by a processor.
type Observable struct {
	Name string // label used in outcome strings, e.g. "r1"
	CPU  int
	Nth  int // 0-based index among the processor's data reads
}

// Test is one litmus test.
type Test struct {
	Name        string
	Description string
	Workload    *workload.Workload
	Observables []Observable
	// Relaxed is the outcome (as produced by formatOutcome) that
	// distinguishes weak behaviour from sequential consistency.
	Relaxed string
	// AllowedOn reports whether the simulated model may exhibit Relaxed.
	AllowedOn func(memmodel.Model) bool
	// ExpectObservable marks tests whose relaxed outcome should actually
	// appear within the seed budget on every model that allows it (used
	// to catch a simulator that is accidentally too strong).
	ExpectObservable bool
	// RetireProb tunes the run; 0 uses the default. Smaller values widen
	// reordering windows.
	RetireProb float64
}

// Result aggregates the outcomes of running one test on one model.
type Result struct {
	Test    *Test
	Model   memmodel.Model
	Seeds   int
	Counts  map[string]int
	Relaxed int // occurrences of the test's relaxed outcome
}

// Forbidden reports whether the relaxed outcome appeared even though the
// model forbids it — a simulator soundness bug.
func (r *Result) Forbidden() bool {
	return r.Relaxed > 0 && !r.Test.AllowedOn(r.Model)
}

// MissedExpected reports whether an expected-observable relaxed outcome
// never appeared on a model that allows it.
func (r *Result) MissedExpected() bool {
	return r.Relaxed == 0 && r.Test.AllowedOn(r.Model) && r.Test.ExpectObservable
}

// String summarizes the result as one line.
func (r *Result) String() string {
	verdict := "forbidden"
	if r.Test.AllowedOn(r.Model) {
		verdict = "allowed"
	}
	return fmt.Sprintf("%-14s %-5s relaxed %-9s observed %4d/%d",
		r.Test.Name, r.Model, verdict, r.Relaxed, r.Seeds)
}

// Run executes the test on the model across seeds [0, seeds).
func Run(t *Test, model memmodel.Model, seeds int) (*Result, error) {
	res := &Result{Test: t, Model: model, Seeds: seeds, Counts: map[string]int{}}
	for seed := int64(0); seed < int64(seeds); seed++ {
		r, err := sim.Run(t.Workload.Prog, sim.Config{
			Model: model, Seed: seed,
			RetireProb: t.RetireProb,
			InitMemory: t.Workload.InitMemory,
		})
		if err != nil {
			return nil, fmt.Errorf("litmus %s on %v seed %d: %w", t.Name, model, seed, err)
		}
		if !r.Completed {
			continue
		}
		outcome, err := formatOutcome(t, r.Exec)
		if err != nil {
			return nil, fmt.Errorf("litmus %s on %v seed %d: %w", t.Name, model, seed, err)
		}
		res.Counts[outcome]++
		if outcome == t.Relaxed {
			res.Relaxed++
		}
	}
	return res, nil
}

// formatOutcome renders the observables as "r1=0 r2=1" (sorted by name).
func formatOutcome(t *Test, e *sim.Execution) (string, error) {
	vals := make(map[string]int64, len(t.Observables))
	for _, ob := range t.Observables {
		n := 0
		found := false
		for _, op := range e.OpsOf(ob.CPU) {
			if op.Kind != sim.OpDataRead {
				continue
			}
			if n == ob.Nth {
				vals[ob.Name] = op.Value
				found = true
				break
			}
			n++
		}
		if !found {
			return "", fmt.Errorf("observable %s: P%d has no data read #%d", ob.Name, ob.CPU+1, ob.Nth)
		}
	}
	names := make([]string, 0, len(vals))
	for n := range vals {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%d", n, vals[n])
	}
	return strings.Join(parts, " "), nil
}

// RunAll runs every catalog test on every model and returns the results
// in catalog × model order.
func RunAll(seeds int) ([]*Result, error) {
	var out []*Result
	for _, t := range Catalog() {
		for _, model := range memmodel.All {
			r, err := Run(t, model, seeds)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

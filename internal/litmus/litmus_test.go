package litmus

import (
	"strings"
	"testing"

	"weakrace/internal/memmodel"
)

const seeds = 1000

// The whole catalog, against every model: forbidden outcomes never
// appear; expected-observable relaxed outcomes appear on every model that
// allows them.
func TestCatalogSoundAndComplete(t *testing.T) {
	results, err := RunAll(seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Catalog())*len(memmodel.All) {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Forbidden() {
			t.Errorf("%s on %v: forbidden relaxed outcome observed %d times (counts %v)",
				r.Test.Name, r.Model, r.Relaxed, r.Counts)
		}
		if r.MissedExpected() {
			t.Errorf("%s on %v: relaxed outcome allowed and expected but never observed in %d seeds",
				r.Test.Name, r.Model, r.Seeds)
		}
		if r.String() == "" {
			t.Error("empty result string")
		}
	}
}

// Sanity of the catalog itself: every test's relaxed outcome is a
// well-formed outcome over its observables, and every workload validates.
func TestCatalogWellFormed(t *testing.T) {
	names := map[string]bool{}
	for _, tc := range Catalog() {
		if names[tc.Name] {
			t.Errorf("duplicate test name %q", tc.Name)
		}
		names[tc.Name] = true
		if err := tc.Workload.Prog.Validate(); err != nil {
			t.Errorf("%s: %v", tc.Name, err)
		}
		if len(tc.Observables) == 0 {
			t.Errorf("%s: no observables", tc.Name)
		}
		for _, ob := range tc.Observables {
			if !strings.Contains(tc.Relaxed, ob.Name+"=") {
				t.Errorf("%s: relaxed outcome %q missing observable %s", tc.Name, tc.Relaxed, ob.Name)
			}
			if ob.CPU < 0 || ob.CPU >= tc.Workload.Prog.NumThreads() {
				t.Errorf("%s: observable %s CPU out of range", tc.Name, ob.Name)
			}
		}
	}
}

// SB on SC must be exactly the three SC-reachable outcomes.
func TestStoreBufferingOutcomeSpaceUnderSC(t *testing.T) {
	r, err := Run(storeBuffering(), memmodel.SC, seeds)
	if err != nil {
		t.Fatal(err)
	}
	for outcome := range r.Counts {
		if outcome == "r1=0 r2=0" {
			t.Fatalf("SC produced the relaxed SB outcome")
		}
	}
	// At least two of the three legal outcomes should show up in 400 seeds.
	if len(r.Counts) < 2 {
		t.Fatalf("suspiciously few SB outcomes under SC: %v", r.Counts)
	}
}

// The observable extractor fails loudly when a read is missing.
func TestMissingObservable(t *testing.T) {
	tc := storeBuffering()
	tc.Observables = []Observable{{Name: "rz", CPU: 0, Nth: 5}}
	if _, err := Run(tc, memmodel.SC, 1); err == nil {
		t.Fatal("missing observable not reported")
	}
}

package scp

import (
	"testing"

	"weakrace/internal/core"
	"weakrace/internal/memmodel"
	"weakrace/internal/program"
	"weakrace/internal/sim"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

const budget = 1 << 20

func mustRun(t *testing.T, w *workload.Workload, cfg sim.Config) *sim.Result {
	t.Helper()
	cfg.InitMemory = w.InitMemory
	r, err := sim.Run(w.Prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustAnalyze(t *testing.T, e *sim.Execution) *core.Analysis {
	t.Helper()
	a, err := core.Analyze(trace.FromExecution(e), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// Every SC-model execution must verify as sequentially consistent.
func TestVerifySCAcceptsSCExecutions(t *testing.T) {
	workloads := []*workload.Workload{
		workload.Figure1a(),
		workload.Figure1b(),
		workload.Figure2(),
		workload.LockedCounter(3, 3, -1),
		workload.ProducerConsumer(3, true),
	}
	for _, w := range workloads {
		for seed := int64(0); seed < 10; seed++ {
			r := mustRun(t, w, sim.Config{Model: memmodel.SC, Seed: seed})
			sc, decided := VerifySC(r.Exec, budget)
			if !decided {
				t.Fatalf("%s seed %d: verifier ran out of budget", w.Name, seed)
			}
			if !sc {
				t.Fatalf("%s seed %d: SC execution rejected", w.Name, seed)
			}
		}
	}
}

// The DRF theorem, checked end to end: race-free programs produce
// sequentially consistent executions on weak models, and the exact
// verifier agrees.
func TestVerifySCAcceptsRaceFreeWeakExecutions(t *testing.T) {
	workloads := []*workload.Workload{
		workload.Figure1b(),
		workload.LockedCounter(3, 2, -1),
		workload.ProducerConsumer(3, true),
		workload.BarrierPhases(2),
	}
	for _, w := range workloads {
		for _, model := range []memmodel.Model{memmodel.WO, memmodel.RCsc} {
			for seed := int64(0); seed < 5; seed++ {
				r := mustRun(t, w, sim.Config{Model: model, Seed: seed})
				sc, decided := VerifySC(r.Exec, budget)
				if !decided {
					t.Fatalf("%s %v seed %d: verifier ran out of budget", w.Name, model, seed)
				}
				if !sc {
					t.Fatalf("%s %v seed %d: race-free weak execution rejected as non-SC", w.Name, model, seed)
				}
			}
		}
	}
}

// The Figure 2b stale-dequeue execution is not sequentially consistent:
// P2 read QEmpty's new value but Q's old one, and P1 wrote Q first.
func TestVerifySCRejectsFig2Anomaly(t *testing.T) {
	r, err := workload.RunFig2Stale(memmodel.WO, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc, decided := VerifySC(r.Exec, budget)
	if !decided {
		t.Fatal("verifier ran out of budget")
	}
	if sc {
		t.Fatal("stale-dequeue execution accepted as SC")
	}
}

// The store-buffer litmus outcome (both readers see 0) is not SC.
func TestVerifySCRejectsSBLitmus(t *testing.T) {
	b := program.NewBuilder("sb", 2, 2)
	b.Thread("P1").
		Write(program.At(0), program.Imm(1)).
		Read(0, program.At(1))
	b.Thread("P2").
		Write(program.At(1), program.Imm(1)).
		Read(0, program.At(0))
	p := b.MustBuild()
	found := false
	for seed := int64(0); seed < 500 && !found; seed++ {
		r, err := sim.Run(p, sim.Config{Model: memmodel.WO, Seed: seed, RetireProb: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		r1 := r.Exec.OpsOf(0)[1].Value
		r2 := r.Exec.OpsOf(1)[1].Value
		if r1 == 0 && r2 == 0 {
			found = true
			sc, decided := VerifySC(r.Exec, budget)
			if !decided {
				t.Fatal("verifier ran out of budget on a 6-op execution")
			}
			if sc {
				t.Fatal("SB litmus outcome accepted as SC")
			}
		}
	}
	if !found {
		t.Fatal("SB litmus outcome never produced in 500 seeds")
	}
}

func TestSCBoundary(t *testing.T) {
	// On an SC execution the boundary is the whole execution.
	r := mustRun(t, workload.Figure2(), sim.Config{Model: memmodel.SC, Seed: 3})
	n, decided := SCBoundary(r.Exec, budget)
	if !decided || n != len(r.Exec.Ops) {
		t.Fatalf("SC execution boundary = %d (decided=%v), want %d", n, decided, len(r.Exec.Ops))
	}
	// On the Figure 2b anomaly it is a strict prefix, and not empty (the
	// execution starts SC).
	stale, err := workload.RunFig2Stale(memmodel.WO, 2)
	if err != nil {
		t.Fatal(err)
	}
	n, decided = SCBoundary(stale.Exec, budget)
	if !decided {
		t.Fatal("boundary search ran out of budget")
	}
	if n == 0 || n >= len(stale.Exec.Ops) {
		t.Fatalf("boundary = %d of %d, want a proper non-empty prefix",
			n, len(stale.Exec.Ops))
	}
}

func TestEnumerateSCFigure1a(t *testing.T) {
	w := workload.Figure1a()
	gt, err := EnumerateSC(w.Prog, w.InitMemory, EnumLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if !gt.Complete() {
		t.Fatalf("figure 1a enumeration truncated: %+v", gt)
	}
	// 2+2 independent ops: C(4,2) = 6 interleavings.
	if gt.Executions != 6 {
		t.Fatalf("executions = %d, want 6", gt.Executions)
	}
	// Exactly two lower-level data races: (P1 W x, P2 R x) and (P1 W y, P2 R y).
	if len(gt.Races) != 2 {
		t.Fatalf("ground-truth races = %d, want 2: %v", len(gt.Races), gt.Races)
	}
	wantX := core.LowerLevelRace{
		Loc: workload.Fig1X,
		X:   sim.StaticOp{CPU: 0, PC: 0, Loc: workload.Fig1X}, XWrites: true,
		Y: sim.StaticOp{CPU: 1, PC: 1, Loc: workload.Fig1X}, YWrites: false,
	}
	wantY := core.LowerLevelRace{
		Loc: workload.Fig1Y,
		X:   sim.StaticOp{CPU: 0, PC: 1, Loc: workload.Fig1Y}, XWrites: true,
		Y: sim.StaticOp{CPU: 1, PC: 0, Loc: workload.Fig1Y}, YWrites: false,
	}
	if !gt.Races.Contains(wantX) || !gt.Races.Contains(wantY) {
		t.Fatalf("ground truth missing expected races: %v", gt.Races)
	}
}

func TestEnumerateSCRaceFreeProgram(t *testing.T) {
	// Figure 1b has a spin loop: enumeration truncates unfair schedules
	// but must never find a data race.
	w := workload.Figure1b()
	gt, err := EnumerateSC(w.Prog, w.InitMemory, EnumLimits{MaxExecutions: 3000, MaxStepsPerPath: 40})
	if err != nil {
		t.Fatal(err)
	}
	if gt.Executions == 0 {
		t.Fatal("no executions completed")
	}
	if len(gt.Races) != 0 {
		t.Fatalf("race-free program has ground-truth races: %v", gt.Races)
	}
}

func TestSampleSCFigure2(t *testing.T) {
	w := workload.Figure2()
	gt, err := SampleSC(w.Prog, w.InitMemory, 400)
	if err != nil {
		t.Fatal(err)
	}
	if gt.Complete() {
		t.Fatal("sampling must report incompleteness")
	}
	if gt.Executions != 400 {
		t.Fatalf("executions = %d, want 400", gt.Executions)
	}
	// The queue races occur under SC; the region races never do.
	sawQueue := false
	for r := range gt.Races {
		if r.Loc == workload.Fig2Q || r.Loc == workload.Fig2QEmpty {
			sawQueue = true
		}
		if r.Loc >= workload.Fig2RegionP3 {
			t.Fatalf("region race in SC ground truth: %v", r)
		}
	}
	if !sawQueue {
		t.Fatal("queue races never observed in 400 SC samples")
	}
}

// The paper's central guarantee, end to end: on the Figure 2b anomaly,
// the first partition contains a race that occurs under SC.
func TestCondition34OnFigure2Anomaly(t *testing.T) {
	stale, err := workload.RunFig2Stale(memmodel.WO, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := mustAnalyze(t, stale.Exec)
	if a.RaceFree() {
		t.Fatal("anomaly execution reported race-free")
	}
	w := workload.Figure2()
	gt, err := SampleSC(w.Prog, w.InitMemory, 400)
	if err != nil {
		t.Fatal(err)
	}
	rep := CheckCondition34(a, stale.Exec, gt, budget)
	if !rep.OK() {
		t.Fatalf("Condition 3.4 violated: %s", rep)
	}
	if rep.RaceFree {
		t.Fatal("report claims race-free")
	}
}

// Race-free weak executions: the detector reports no races and the
// verifier confirms sequential consistency (Condition 3.4(1)).
func TestCondition34OnRaceFreeExecution(t *testing.T) {
	w := workload.Figure1b()
	r := mustRun(t, w, sim.Config{Model: memmodel.WO, Seed: 5})
	a := mustAnalyze(t, r.Exec)
	gt := &GroundTruth{Races: RaceSet{}}
	rep := CheckCondition34(a, r.Exec, gt, budget)
	if !rep.OK() || !rep.RaceFree || !rep.ExecutionSC {
		t.Fatalf("race-free check failed: %s", rep)
	}
}

// The Theorem 3.5 ablation: pathological hardware (value speculation)
// violates Condition 3.4(1) — a race-free execution that is not SC.
func TestCondition34AblationPathological(t *testing.T) {
	b := program.NewBuilder("patho", 1, 2)
	tb := b.Thread("P1")
	for i := 0; i < 30; i++ {
		tb.Write(program.At(0), program.Imm(int64(i+1))).Fence().Read(0, program.At(0))
	}
	p := b.MustBuild()
	violated := false
	for seed := int64(0); seed < 60 && !violated; seed++ {
		r, err := sim.Run(p, sim.Config{
			Model: memmodel.WO, Seed: seed,
			Pathological: true, PathologicalProb: 0.3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Exec.SpeculativeReads == 0 {
			continue
		}
		a := mustAnalyze(t, r.Exec)
		if !a.RaceFree() {
			t.Fatal("single-threaded program reported racy")
		}
		rep := CheckCondition34(a, r.Exec, &GroundTruth{Races: RaceSet{}}, budget)
		if !rep.SCDecided {
			continue
		}
		if !rep.ExecutionSC {
			violated = true
			if rep.OK() {
				t.Fatal("report.OK() true despite non-SC race-free execution")
			}
		}
	}
	if !violated {
		t.Fatal("pathological hardware never produced a detectable Condition 3.4(1) violation")
	}
}

func TestRaceSetCanonicalization(t *testing.T) {
	s := RaceSet{}
	r := core.LowerLevelRace{
		Loc: 3,
		X:   sim.StaticOp{CPU: 1, PC: 5, Loc: 3}, XWrites: false,
		Y: sim.StaticOp{CPU: 0, PC: 2, Loc: 3}, YWrites: true,
	}
	s.Add(r)
	flipped := core.LowerLevelRace{
		Loc: 3,
		X:   sim.StaticOp{CPU: 0, PC: 2, Loc: 3}, XWrites: true,
		Y: sim.StaticOp{CPU: 1, PC: 5, Loc: 3}, YWrites: false,
	}
	if !s.Contains(flipped) {
		t.Fatal("canonicalization failed: flipped race not found")
	}
	other := RaceSet{}
	other.Add(core.LowerLevelRace{Loc: 9})
	s.Union(other)
	if len(s) != 2 {
		t.Fatalf("union size = %d, want 2", len(s))
	}
}

func TestCondition34ReportString(t *testing.T) {
	rep := &Condition34Report{RaceFree: true, ExecutionSC: true, SCDecided: true}
	if rep.String() == "" || !rep.OK() {
		t.Fatal("race-free report broken")
	}
	rep = &Condition34Report{FirstPartitionHasSCRace: []bool{true, false}}
	if rep.OK() {
		t.Fatal("report with failing partition must not be OK")
	}
	if rep.String() == "" {
		t.Fatal("empty string")
	}
}

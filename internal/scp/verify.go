// Package scp implements the sequential-consistency machinery around the
// paper's Condition 3.4: an exact (exponential, budgeted) verifier that
// decides whether a recorded execution is sequentially consistent, the
// computation of a sequentially consistent prefix boundary (the "End of
// SCP" marker of Figure 2b), ground-truth enumeration and sampling of the
// data races that occur in sequentially consistent executions of a
// program, and the checker that validates Condition 3.4 / Theorem 4.2 on
// a simulated execution.
//
// Verifying that an execution is sequentially consistent is NP-hard in
// general; every entry point takes an explicit state budget and reports
// whether it decided the question within it.
package scp

import (
	"sort"
	"strconv"
	"strings"

	"weakrace/internal/sim"
)

// atom is a maximal group of operations that execute indivisibly: a single
// operation, or the read+write halves of a Test&Set.
type atom struct {
	cpu int
	ops []sim.MemOp
}

// atomize groups each processor's operations into atoms, pairing a
// Test&Set's acquire-read with its sync-write (same processor, same PC,
// same scheduler step).
func atomize(e *sim.Execution) [][]atom {
	out := make([][]atom, e.NumCPUs)
	for c := 0; c < e.NumCPUs; c++ {
		ops := e.OpsOf(c)
		for i := 0; i < len(ops); i++ {
			if i+1 < len(ops) &&
				ops[i].Kind == sim.OpAcquireRead &&
				ops[i+1].Kind == sim.OpSyncWriteOther &&
				ops[i].Step == ops[i+1].Step && ops[i].PC == ops[i+1].PC {
				out[c] = append(out[c], atom{cpu: c, ops: []sim.MemOp{ops[i], ops[i+1]}})
				i++
				continue
			}
			out[c] = append(out[c], atom{cpu: c, ops: []sim.MemOp{ops[i]}})
		}
	}
	return out
}

// verifier is the backtracking state for one SC-consistency query.
type verifier struct {
	atoms   [][]atom
	mem     []int64
	idx     []int
	visited map[string]bool
	budget  int
	blown   bool
}

func (v *verifier) key() string {
	var sb strings.Builder
	for _, i := range v.idx {
		sb.WriteString(strconv.Itoa(i))
		sb.WriteByte(',')
	}
	sb.WriteByte('|')
	for _, m := range v.mem {
		sb.WriteString(strconv.FormatInt(m, 36))
		sb.WriteByte(',')
	}
	return sb.String()
}

// enabled reports whether processor c's next atom can execute now: every
// read in the atom must return exactly the value it returned in the
// recorded execution (applying the atom's writes as it goes).
func (v *verifier) enabled(c int) bool {
	a := v.atoms[c][v.idx[c]]
	// Test&Set atoms: the read happens before the write, and the write
	// cannot invalidate the read, so checking reads against current memory
	// with writes applied in order is exact.
	saved := make([]int64, 0, 2)
	savedLoc := make([]int, 0, 2)
	ok := true
	for _, op := range a.ops {
		if op.Kind.IsRead() {
			if v.mem[op.Loc] != op.Value {
				ok = false
				break
			}
		} else {
			savedLoc = append(savedLoc, int(op.Loc))
			saved = append(saved, v.mem[op.Loc])
			v.mem[op.Loc] = op.Value
		}
	}
	// Roll back the trial writes.
	for i := len(saved) - 1; i >= 0; i-- {
		v.mem[savedLoc[i]] = saved[i]
	}
	return ok
}

func (v *verifier) apply(c int) (undoLocs []int, undoVals []int64) {
	a := v.atoms[c][v.idx[c]]
	for _, op := range a.ops {
		if op.Kind.IsWrite() {
			undoLocs = append(undoLocs, int(op.Loc))
			undoVals = append(undoVals, v.mem[op.Loc])
			v.mem[op.Loc] = op.Value
		}
	}
	v.idx[c]++
	return undoLocs, undoVals
}

func (v *verifier) undo(c int, locs []int, vals []int64) {
	v.idx[c]--
	for i := len(locs) - 1; i >= 0; i-- {
		v.mem[locs[i]] = vals[i]
	}
}

func (v *verifier) search() bool {
	done := true
	for c := range v.atoms {
		if v.idx[c] < len(v.atoms[c]) {
			done = false
			break
		}
	}
	if done {
		return true
	}
	if v.blown {
		return false
	}
	k := v.key()
	if v.visited[k] {
		return false
	}
	if len(v.visited) >= v.budget {
		v.blown = true
		return false
	}
	v.visited[k] = true
	for c := range v.atoms {
		if v.idx[c] >= len(v.atoms[c]) || !v.enabled(c) {
			continue
		}
		locs, vals := v.apply(c)
		if v.search() {
			return true
		}
		v.undo(c, locs, vals)
		if v.blown {
			return false
		}
	}
	return false
}

// VerifySC reports whether the execution is sequentially consistent: some
// total order of its operations, consistent with each processor's program
// order and with Test&Set atomicity, in which every read returns the value
// of the most recent write to its location (or the initial value).
//
// budget bounds the number of distinct search states; decided is false if
// the search exhausted the budget without an answer (sc is then false).
func VerifySC(e *sim.Execution, budget int) (sc, decided bool) {
	return verifyAtoms(atomize(e), e.InitMemory, e.NumLocations, budget)
}

func verifyAtoms(atoms [][]atom, initMemory []int64, numLocs, budget int) (sc, decided bool) {
	if budget <= 0 {
		budget = 1 << 20
	}
	mem := make([]int64, numLocs)
	copy(mem, initMemory)
	v := &verifier{
		atoms:   atoms,
		mem:     mem,
		idx:     make([]int, len(atoms)),
		visited: make(map[string]bool),
		budget:  budget,
	}
	ok := v.search()
	if ok {
		return true, true
	}
	return false, !v.blown
}

// SCBoundary returns the length (in operations, by global issue order) of
// the longest prefix of the execution that is sequentially consistent —
// the paper's "End of SCP" marker. Prefixes by issue order are closed
// under program order and pairing, and SC-consistency of such prefixes is
// monotone (a restriction of a valid witness order remains valid), so the
// boundary is found by binary search.
//
// decided is false if any probed prefix exhausted the budget; n is then a
// lower bound.
func SCBoundary(e *sim.Execution, budget int) (n int, decided bool) {
	total := len(e.Ops)
	check := func(n int) (bool, bool) {
		pre := prefixExecution(e, n)
		return VerifySC(pre, budget)
	}
	decided = true
	lo, hi := 0, total // invariant: prefix lo is SC (empty prefix trivially is)
	for lo < hi {
		mid := (lo + hi + 1) / 2
		ok, dec := check(mid)
		if !dec {
			decided = false
		}
		if ok {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, decided
}

// prefixExecution restricts e to its first n operations by issue order.
// Atomic Test&Set pairs are never split: if the cut would separate them,
// the read half is excluded too.
func prefixExecution(e *sim.Execution, n int) *sim.Execution {
	if n > len(e.Ops) {
		n = len(e.Ops)
	}
	// Avoid splitting a Test&Set atom.
	if n > 0 && n < len(e.Ops) {
		last := e.Ops[n-1]
		next := e.Ops[n]
		if last.Kind == sim.OpAcquireRead && next.Kind == sim.OpSyncWriteOther &&
			last.CPU == next.CPU && last.Step == next.Step && last.PC == next.PC {
			n--
		}
	}
	pre := &sim.Execution{
		ProgramName:  e.ProgramName,
		Model:        e.Model,
		Seed:         e.Seed,
		NumCPUs:      e.NumCPUs,
		NumLocations: e.NumLocations,
		InitMemory:   e.InitMemory,
		Ops:          e.Ops[:n],
		PerCPU:       make([][]int, e.NumCPUs),
	}
	for c, ids := range e.PerCPU {
		cut := sort.SearchInts(ids, n)
		pre.PerCPU[c] = ids[:cut]
	}
	return pre
}

package scp

import (
	"fmt"
	"strings"

	"weakrace/internal/core"
	"weakrace/internal/sim"
)

// Condition34Report records the outcome of validating the paper's
// Condition 3.4 guarantees on one execution:
//
//	(1) if the detector found no data races, the execution must be
//	    sequentially consistent (so the programmer may reason under SC);
//	(2) if it found data races, every reported FIRST partition must
//	    contain at least one data race that occurs in some sequentially
//	    consistent execution of the program (Theorem 4.2).
type Condition34Report struct {
	// RaceFree is the detector's verdict.
	RaceFree bool

	// ExecutionSC / SCDecided: the exact verifier's verdict on the whole
	// execution, checked only in the race-free case.
	ExecutionSC bool
	SCDecided   bool

	// FirstPartitionHasSCRace[i] reports, for the i-th first partition,
	// whether one of its races is in the ground-truth SC race set.
	FirstPartitionHasSCRace []bool

	// GroundTruthComplete echoes whether the SC race set was exhaustive.
	// When it is not, a false entry above may be a sampling artifact
	// rather than a genuine violation.
	GroundTruthComplete bool
}

// OK reports whether every checked guarantee held.
func (r *Condition34Report) OK() bool {
	if r.RaceFree {
		return r.ExecutionSC && r.SCDecided
	}
	for _, ok := range r.FirstPartitionHasSCRace {
		if !ok {
			return false
		}
	}
	return true
}

// String summarizes the report.
func (r *Condition34Report) String() string {
	var sb strings.Builder
	if r.RaceFree {
		fmt.Fprintf(&sb, "race-free: execution SC=%v (decided=%v)", r.ExecutionSC, r.SCDecided)
	} else {
		ok := 0
		for _, b := range r.FirstPartitionHasSCRace {
			if b {
				ok++
			}
		}
		fmt.Fprintf(&sb, "racy: %d/%d first partitions contain a ground-truth SC race (ground truth complete=%v)",
			ok, len(r.FirstPartitionHasSCRace), r.GroundTruthComplete)
	}
	return sb.String()
}

// CheckCondition34 validates the Condition 3.4 guarantees for one
// execution: a is the detector's analysis of the execution's trace, e is
// the execution itself, scRaces is the ground-truth SC race set for the
// program (EnumerateSC or SampleSC), and scBudget bounds the exact SC
// verifier.
func CheckCondition34(a *core.Analysis, e *sim.Execution, gt *GroundTruth, scBudget int) *Condition34Report {
	rep := &Condition34Report{
		RaceFree:            a.RaceFree(),
		GroundTruthComplete: gt.Complete(),
	}
	if rep.RaceFree {
		rep.ExecutionSC, rep.SCDecided = VerifySC(e, scBudget)
		return rep
	}
	for _, pi := range a.FirstPartitions {
		p := a.Partitions[pi]
		has := false
		for _, ri := range p.Races {
			for _, ll := range a.LowerLevel(a.Races[ri]) {
				if gt.Races.Contains(ll) {
					has = true
					break
				}
			}
			if has {
				break
			}
		}
		rep.FirstPartitionHasSCRace = append(rep.FirstPartitionHasSCRace, has)
	}
	return rep
}

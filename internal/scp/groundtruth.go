package scp

import (
	"fmt"

	"weakrace/internal/core"
	"weakrace/internal/memmodel"
	"weakrace/internal/program"
	"weakrace/internal/sim"
	"weakrace/internal/trace"
)

// RaceSet is a set of lower-level data races, keyed by static identity —
// the currency in which "this race occurs in some sequentially consistent
// execution" (Theorem 4.2) is checked.
type RaceSet map[core.LowerLevelRace]bool

// Add inserts the canonical form of the race.
func (s RaceSet) Add(r core.LowerLevelRace) { s[r.Canonical()] = true }

// Contains reports membership of the canonical form.
func (s RaceSet) Contains(r core.LowerLevelRace) bool { return s[r.Canonical()] }

// Union merges other into s.
func (s RaceSet) Union(other RaceSet) {
	for r := range other {
		s[r] = true
	}
}

// collectRaces runs the detector on an execution and adds every
// lower-level data race to the set.
func collectRaces(e *sim.Execution, into RaceSet) error {
	a, err := core.Analyze(trace.FromExecution(e), core.Options{})
	if err != nil {
		return err
	}
	for _, ri := range a.DataRaces {
		for _, ll := range a.LowerLevel(a.Races[ri]) {
			into.Add(ll)
		}
	}
	return nil
}

// EnumLimits bounds an exhaustive enumeration of SC executions.
type EnumLimits struct {
	// MaxExecutions stops after this many completed executions
	// (default 100000).
	MaxExecutions int
	// MaxStepsPerPath abandons a schedule after this many instructions
	// (spin loops make the schedule tree infinite; abandoned paths are
	// counted, and their races are not collected). Default 400.
	MaxStepsPerPath int
}

func (l EnumLimits) withDefaults() EnumLimits {
	if l.MaxExecutions == 0 {
		l.MaxExecutions = 100000
	}
	if l.MaxStepsPerPath == 0 {
		l.MaxStepsPerPath = 400
	}
	return l
}

// GroundTruth is the set of data races known to occur in sequentially
// consistent executions of a program.
type GroundTruth struct {
	// Races holds the lower-level data races observed.
	Races RaceSet
	// Executions is the number of SC executions analyzed.
	Executions int
	// Truncated counts abandoned schedules (step limit) or a hit of the
	// execution limit; when zero, Races is exhaustive for the program.
	Truncated int
}

// Complete reports whether the enumeration covered every SC execution.
func (g *GroundTruth) Complete() bool { return g.Truncated == 0 }

// EnumerateSC explores every sequentially consistent schedule of the
// program (depth-first over processor choices) and collects every data
// race any of them exhibits. Exact but exponential: use it on
// litmus-sized programs and fall back to SampleSC elsewhere.
func EnumerateSC(p *program.Program, initMemory map[program.Addr]int64, lim EnumLimits) (*GroundTruth, error) {
	lim = lim.withDefaults()
	root, err := sim.NewStepper(p, initMemory)
	if err != nil {
		return nil, err
	}
	gt := &GroundTruth{Races: RaceSet{}}
	var dfs func(s *sim.Stepper) error
	dfs = func(s *sim.Stepper) error {
		if gt.Executions >= lim.MaxExecutions {
			gt.Truncated++
			return nil
		}
		runnable := s.Runnable()
		if len(runnable) == 0 {
			gt.Executions++
			return collectRaces(s.Execution(), gt.Races)
		}
		if s.Steps() >= lim.MaxStepsPerPath {
			gt.Truncated++
			return nil
		}
		for _, c := range runnable {
			child := s.Clone()
			if err := child.Step(c); err != nil {
				return err
			}
			if err := dfs(child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := dfs(root); err != nil {
		return nil, err
	}
	return gt, nil
}

// SampleSC runs the program under SC with numSeeds random schedules and
// collects the data races observed. Sound (every collected race occurs in
// an SC execution) but not exhaustive; Truncated is always reported as
// numSeeds to signal incompleteness.
func SampleSC(p *program.Program, initMemory map[program.Addr]int64, numSeeds int) (*GroundTruth, error) {
	gt := &GroundTruth{Races: RaceSet{}, Truncated: numSeeds}
	for seed := int64(0); seed < int64(numSeeds); seed++ {
		r, err := sim.Run(p, sim.Config{
			Model: memmodel.SC, Seed: seed, InitMemory: initMemory,
		})
		if err != nil {
			return nil, fmt.Errorf("scp: sample seed %d: %w", seed, err)
		}
		if !r.Completed {
			continue
		}
		gt.Executions++
		if err := collectRaces(r.Exec, gt.Races); err != nil {
			return nil, err
		}
	}
	return gt, nil
}

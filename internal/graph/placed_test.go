package graph

// Equivalence of the indexed-placement builder with the append builder:
// a NewPlaced graph whose edges are Placed at the slots AddEdge would
// have appended them to must be indistinguishable from the
// NewWithDegrees graph — same N/M, same successor lists in the same
// order — regardless of how the Place calls are distributed over
// goroutines. Run under -race in CI to catch any overlap in the slab
// writes.

import (
	"math/rand"
	"sync"
	"testing"
)

func TestPlacedFillWorkerEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 3000
	// Random edge list in insertion order; slot of an edge = how many
	// earlier edges share its source.
	type edge struct{ u, v, slot int }
	var edges []edge
	deg := make([]int32, n)
	for i := 0; i < 20000; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		edges = append(edges, edge{u, v, int(deg[u])})
		deg[u]++
	}

	want := NewWithDegrees(deg)
	for _, e := range edges {
		want.AddEdge(e.u, e.v)
	}

	for _, workers := range []int{1, 2, 3, 8, 16} {
		got := NewPlaced(deg)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := len(edges) * w / workers
			hi := len(edges) * (w + 1) / workers
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, e := range edges[lo:hi] {
					got.Place(e.u, e.slot, e.v)
				}
			}()
		}
		wg.Wait()

		if got.N() != want.N() || got.M() != want.M() {
			t.Fatalf("workers=%d: N/M = %d/%d, want %d/%d", workers, got.N(), got.M(), want.N(), want.M())
		}
		for u := 0; u < n; u++ {
			gs, ws := got.Succ(u), want.Succ(u)
			if len(gs) != len(ws) {
				t.Fatalf("workers=%d: node %d: %d successors, want %d", workers, u, len(gs), len(ws))
			}
			for k := range ws {
				if gs[k] != ws[k] {
					t.Fatalf("workers=%d: node %d slot %d: %d, want %d", workers, u, k, gs[k], ws[k])
				}
			}
		}
	}
}

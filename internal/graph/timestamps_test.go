package graph

import (
	"math/rand"
	"slices"
	"testing"
)

// randStreamGraph builds a stream-structured digraph of the detector's
// hb1 shape: width streams of random lengths chained by po edges, plus
// cross random cross-edges (the so1 analogue). Cross edges may point
// backward, so the graph can contain cycles — exactly the weak-execution
// case (§3.1) the SCC layer of Timestamps exists for.
func randStreamGraph(rng *rand.Rand, width, maxLen, cross int) (g *Digraph, stream, pos []int32) {
	n := 0
	lens := make([]int, width)
	for p := range lens {
		lens[p] = 1 + rng.Intn(maxLen)
		n += lens[p]
	}
	g = New(n)
	stream = make([]int32, n)
	pos = make([]int32, n)
	id := 0
	for p := 0; p < width; p++ {
		for i := 0; i < lens[p]; i++ {
			stream[id] = int32(p)
			pos[id] = int32(i)
			if i > 0 {
				g.AddEdge(id-1, id)
			}
			id++
		}
	}
	for i := 0; i < cross; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdgeUnique(u, v)
		}
	}
	return g, stream, pos
}

// The timestamp layer must answer every reachability query exactly like
// the bitset closure, on acyclic and cyclic stream graphs alike.
func TestQuickTimestampsMatchReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 150; trial++ {
		width := 1 + rng.Intn(5)
		g, stream, pos := randStreamGraph(rng, width, 8, rng.Intn(25))
		ts := NewTimestamps(g, stream, pos, width, nil, 1+trial%3)
		r := NewReachability(g)
		n := g.N()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if got, want := ts.Reaches(u, v), r.Reaches(u, v); got != want {
					t.Fatalf("trial %d: Reaches(%d,%d) = %v, closure says %v", trial, u, v, got, want)
				}
				if got, want := ts.ReachesProper(u, v), r.ReachesProper(u, v); got != want {
					t.Fatalf("trial %d: ReachesProper(%d,%d) = %v, closure says %v", trial, u, v, got, want)
				}
				if got, want := ts.Ordered(u, v), r.Ordered(u, v); got != want {
					t.Fatalf("trial %d: Ordered(%d,%d) = %v, closure says %v", trial, u, v, got, want)
				}
			}
		}
	}
}

// Window must bracket every (event, stream) pair exactly: the events of
// the stream reaching x form a prefix of length predCount, the events
// reached from x a suffix starting at succPos — verified event by event
// against the closure.
func TestQuickTimestampsWindowMatchesClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 150; trial++ {
		width := 1 + rng.Intn(5)
		g, stream, pos := randStreamGraph(rng, width, 8, rng.Intn(25))
		ts := NewTimestamps(g, stream, pos, width, nil, 1+trial%3)
		r := NewReachability(g)
		n := g.N()
		// node id of stream p, position i — ids are assigned stream-major.
		node := make([][]int, width)
		for u := 0; u < n; u++ {
			node[stream[u]] = append(node[stream[u]], 0)
		}
		for u := 0; u < n; u++ {
			node[stream[u]][pos[u]] = u
		}
		for u := 0; u < n; u++ {
			for p := 0; p < width; p++ {
				predCount, succPos := ts.Window(u, p)
				for i, v := range node[p] {
					if got, want := i < int(predCount), r.Reaches(v, u); got != want {
						t.Fatalf("trial %d: Window(%d,%d) predCount=%d wrong at pos %d (closure %v)",
							trial, u, p, predCount, i, want)
					}
					if got, want := i >= int(succPos), r.Reaches(u, v); got != want {
						t.Fatalf("trial %d: Window(%d,%d) succPos=%d wrong at pos %d (closure %v)",
							trial, u, p, succPos, i, want)
					}
				}
			}
		}
	}
}

// Epochs and clocks must be mutually consistent: v's clock covers u's
// epoch exactly when u reaches v.
func TestTimestampsEpochClockConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	g, stream, pos := randStreamGraph(rng, 4, 10, 20)
	ts := NewTimestamps(g, stream, pos, 4, nil, 1)
	r := NewReachability(g)
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u == v {
				continue
			}
			if got, want := ts.EpochOf(u).Covered(ts.VCOf(v)), r.Reaches(u, v); got != want {
				t.Fatalf("EpochOf(%d).Covered(VCOf(%d)) = %v, closure says %v", u, v, got, want)
			}
		}
	}
}

func TestTimestampsSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for mismatched stream table")
		}
	}()
	NewTimestamps(New(3), []int32{0, 0}, []int32{0, 1}, 1, nil, 1)
}

// NewWithDegrees must behave exactly like New + AddEdge, including when a
// node receives more edges than its declared degree (the list falls off
// the slab and grows normally).
func TestNewWithDegrees(t *testing.T) {
	g := NewWithDegrees([]int32{2, 0, 1})
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(2, 0)
	g.AddEdge(1, 0) // exceeds deg[1] = 0
	g.AddEdge(1, 2) // keeps exceeding
	want := [][]int{{1, 2}, {0, 2}, {0}}
	for u, w := range want {
		got := g.Succ(u)
		if len(got) != len(w) {
			t.Fatalf("Succ(%d) = %v, want %v", u, got, w)
		}
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("Succ(%d) = %v, want %v", u, got, w)
			}
		}
	}
	if g.M() != 5 {
		t.Fatalf("M() = %d, want 5", g.M())
	}
}

func TestQuickNewWithDegreesMatchesNew(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(20)
		type edge struct{ u, v int }
		var edges []edge
		deg := make([]int32, n)
		for i := rng.Intn(40); i > 0; i-- {
			e := edge{rng.Intn(n), rng.Intn(n)}
			edges = append(edges, e)
			deg[e.u]++
		}
		// Undercount some degrees so the overflow path is exercised too.
		for i := range deg {
			if deg[i] > 0 && rng.Intn(4) == 0 {
				deg[i]--
			}
		}
		a, b := New(n), NewWithDegrees(deg)
		for _, e := range edges {
			a.AddEdge(e.u, e.v)
			b.AddEdge(e.u, e.v)
		}
		for u := 0; u < n; u++ {
			sa, sb := a.Succ(u), b.Succ(u)
			if len(sa) != len(sb) {
				t.Fatalf("trial %d: Succ(%d) lengths differ: %v vs %v", trial, u, sa, sb)
			}
			for i := range sa {
				if sa[i] != sb[i] {
					t.Fatalf("trial %d: Succ(%d) = %v vs %v", trial, u, sa, sb)
				}
			}
		}
	}
}

// The clock slabs must be byte-identical for every worker count,
// including graphs large enough to cross the parallel-fill cutoff. The
// worker sweep runs under -race in CI, so it also proves the fill's
// writes are disjoint.
func TestQuickTimestampsWorkerEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 6; trial++ {
		width := 2 + rng.Intn(5)
		var g *Digraph
		var stream, pos []int32
		for g == nil || g.N() < fillParallelCutoff {
			g, stream, pos = randStreamGraph(rng, width, 4000, 100+rng.Intn(400))
		}
		ref := NewTimestamps(g, stream, pos, width, nil, 1)
		for _, workers := range []int{2, 3, 8} {
			ts := NewTimestamps(g, stream, pos, width, nil, workers)
			if !slices.Equal(ts.fw, ref.fw) || !slices.Equal(ts.bw, ref.bw) {
				t.Fatalf("trial %d: clock slabs differ between workers=1 and workers=%d", trial, workers)
			}
		}
	}
}

// The span skeleton must agree with a dense per-component fold on small
// graphs too — especially cyclic ones, where every SCC member becomes a
// span boundary.
func TestQuickTimestampsSpansMatchDense(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 300; trial++ {
		width := 1 + rng.Intn(4)
		g, stream, pos := randStreamGraph(rng, width, 12, rng.Intn(30))
		ts := NewTimestamps(g, stream, pos, width, nil, 1)
		fw, bw := denseTimestamps(g, stream, pos, width, ts.scc)
		if !slices.Equal(ts.fw, fw) || !slices.Equal(ts.bw, bw) {
			t.Fatalf("trial %d: span-skeleton slabs differ from dense fold", trial)
		}
	}
}

// denseTimestamps is the pre-span reference: fold and push every
// component row along every cross-component edge, no span derivation.
func denseTimestamps(g *Digraph, stream, pos []int32, width int, scc *SCC) (fw []uint32, bw []int32) {
	k := scc.NumComponents()
	fw = make([]uint32, k*width)
	bw = make([]int32, k*width)
	strLen := make([]int32, width)
	for u := 0; u < g.N(); u++ {
		if l := pos[u] + 1; l > strLen[stream[u]] {
			strLen[stream[u]] = l
		}
	}
	for c := k - 1; c >= 0; c-- {
		row := fw[c*width : (c+1)*width]
		for _, u := range scc.Members[c] {
			if e := uint32(pos[u]) + 1; e > row[stream[u]] {
				row[stream[u]] = e
			}
		}
		for _, u := range scc.Members[c] {
			for _, v := range g.Succ(u) {
				if cv := scc.Comp[v]; cv != c {
					dst := fw[cv*width : (cv+1)*width]
					for i, x := range row {
						if x > dst[i] {
							dst[i] = x
						}
					}
				}
			}
		}
	}
	for c := 0; c < k; c++ {
		row := bw[c*width : (c+1)*width]
		copy(row, strLen)
		for _, u := range scc.Members[c] {
			for _, v := range g.Succ(u) {
				if cv := scc.Comp[v]; cv != c {
					src := bw[cv*width : (cv+1)*width]
					for i, x := range src {
						if x < row[i] {
							row[i] = x
						}
					}
				}
			}
		}
		for _, u := range scc.Members[c] {
			if pos[u] < row[stream[u]] {
				row[stream[u]] = pos[u]
			}
		}
	}
	return fw, bw
}

package graph

import (
	"fmt"
	"runtime"
	"sync"

	"weakrace/internal/telemetry"
	"weakrace/internal/vclock"
)

// Timestamps answers reachability queries on a stream-structured digraph
// — one whose nodes are partitioned into per-processor streams, each
// stream chained by program-order edges — with vector-clock timestamps
// computed in a single topological pass, instead of bitset closure rows.
// This is the shape of the detector's happens-before-1 graph (po chains
// plus so1 edges), and the pass is the linear-time timestamping of
// Kini/Mathur-style happens-before detectors lifted to the post-mortem
// graph.
//
// hb1 may contain cycles on a weak execution (paper §3.1), so the clocks
// are assigned per strongly connected component. The forward clock of
// component c is
//
//	fw[c][p] = 1 + max{ pos(y) : y in stream p, comp(y) reaches c }
//
// (0 when no p-event reaches c). Program order makes "reaches x" a
// PREFIX of each stream, so that single per-stream maximum characterizes
// the entire ancestor cone exactly — on the acyclic part each component
// is one event and the clock is the classic event timestamp; cycles are
// handled exactly because members of an SCC share one clock. Hence
//
//	u reaches v  ⟺  u == v  or  fw[comp(v)][stream(u)] > pos(u),
//
// an O(1) epoch compare (vclock.Epoch.Covered). The mirrored backward
// frontier bw[c][p] is the least position of stream p reached from c, so
// Window brackets a whole stream against an event with two slab reads —
// the quantity the race sweep and the provenance certificates consume
// directly.
//
// The clocks are computed span-parallel. A node is a forward SPAN HEAD
// when its clock is not derivable from its program-order predecessor:
// the first event of its stream, any event with an incoming cross edge
// (an so1 acquire), and any event in — or immediately after — a
// multi-member SCC. Every other node v is forward-INTERIOR: its only
// ancestors are its po-predecessor's ancestors plus itself, so its clock
// is its span head's clock with the own-stream coordinate bumped to
// pos(v)+1. (A same-stream event past v reaching v would close a cycle
// and put v in a multi-member SCC — a head.) A serial SKELETON pass
// therefore clocks only the head components, in descending Tarjan order,
// folding in-edge contributions (an interior predecessor u contributes
// its head's row with stream(u) ↦ pos(u)+1); the per-span FILL of all
// interior rows then runs embarrassingly parallel over disjoint
// singleton-component rows. Backward frontiers mirror the scheme with
// span TAILS (outgoing cross edges — releases — stream ends, and
// multi-member SCC boundaries) and an ascending skeleton. The slabs are
// byte-identical for every worker count: the skeleton is serial and each
// fill write is a pure function of the skeleton rows.
//
// The clocks are exact only when every stream's events form a
// program-order chain in g (the span derivation rides on that chain);
// arbitrary digraphs without that structure must keep using
// Reachability.
type Timestamps struct {
	scc    *SCC
	stream []int32 // stream[u]: the stream (processor) of node u
	pos    []int32 // pos[u]: u's position within its stream
	width  int
	fw     []uint32 // forward clocks, NumComponents x width
	bw     []int32  // backward frontiers, NumComponents x width
	strLen []int32  // events per stream (backward-frontier "none" value)
}

// Span-boundary flags: tsHead starts a forward span (the node's clock is
// not derivable from its po-predecessor), tsTail ends a backward span.
const (
	tsHead uint8 = 1 << iota
	tsTail
)

// fillParallelCutoff is the node count below which the interior fill
// stays sequential: goroutine fan-out costs more than the copies on
// small graphs. The slabs are identical either way.
const fillParallelCutoff = 1 << 12

// NewTimestamps computes vector-clock timestamps for g, whose node u
// belongs to stream stream[u] (< width) at position pos[u], with each
// stream's events chained in program order. stream and pos are copied,
// so arena-backed callers may reuse their buffers; s (optional) supplies
// the Tarjan and span scratch. workers bounds the parallelism of the
// interior fill (0 means GOMAXPROCS; small graphs stay sequential); the
// resulting clocks are byte-identical for every worker count.
func NewTimestamps(g *Digraph, stream, pos []int32, width int, s *Scratch, workers int) *Timestamps {
	defer telemetry.Default().StartSpan("graph.timestamps").End()
	n := g.N()
	if len(stream) != n || len(pos) != n {
		panic(fmt.Sprintf("graph: NewTimestamps: %d nodes but %d streams / %d positions",
			n, len(stream), len(pos)))
	}
	scc := StronglyConnectedOverlay(g, nil, s)
	k := scc.NumComponents()
	t := &Timestamps{
		scc:    scc,
		stream: append([]int32(nil), stream...),
		pos:    append([]int32(nil), pos...),
		width:  width,
		fw:     make([]uint32, k*width),
		bw:     make([]int32, k*width),
		strLen: make([]int32, width),
	}
	for u := 0; u < n; u++ {
		if l := pos[u] + 1; l > t.strLen[stream[u]] {
			t.strLen[stream[u]] = l
		}
	}
	if s == nil {
		s = &Scratch{}
	}
	comp := scc.Comp

	// Stream-major node index: nodeAt[strStart[p]+i] is stream p's node at
	// position i — how the span walks find po-neighbors without a reverse
	// adjacency.
	strStart := s.i32s(&s.tsStrStart, width+1)
	off := int32(0)
	for p := 0; p < width; p++ {
		strStart[p] = off
		off += t.strLen[p]
	}
	strStart[width] = off
	nodeAt := s.i32s(&s.tsNodeAt, int(off))
	for i := range nodeAt {
		nodeAt[i] = -1
	}
	for u := 0; u < n; u++ {
		nodeAt[strStart[stream[u]]+pos[u]] = int32(u)
	}

	// Span classification. Heads: stream starts, cross-edge targets,
	// multi-member SCC members and their po-successors. Tails mirror:
	// stream ends, cross-edge sources, multi-member SCC members and their
	// po-predecessors.
	flags := s.bytes(&s.tsFlags, n)
	for i := range flags {
		flags[i] = 0
	}
	for c := 0; c < k; c++ {
		if len(scc.Members[c]) < 2 {
			continue
		}
		for _, u := range scc.Members[c] {
			flags[u] |= tsHead | tsTail
			p := stream[u]
			if i := pos[u] + 1; i < t.strLen[p] {
				if v := nodeAt[strStart[p]+i]; v >= 0 {
					flags[v] |= tsHead
				}
			}
			if i := pos[u] - 1; i >= 0 {
				if v := nodeAt[strStart[p]+i]; v >= 0 {
					flags[v] |= tsTail
				}
			}
		}
	}
	for u := 0; u < n; u++ {
		// A missing po-neighbor slot (positions are documented contiguous,
		// but decoded input may violate that) is a span boundary too —
		// derivation must never ride a chain edge that is not there.
		if pos[u] == 0 || nodeAt[strStart[stream[u]]+pos[u]-1] < 0 {
			flags[u] |= tsHead
		}
		if i := pos[u] + 1; i == t.strLen[stream[u]] || nodeAt[strStart[stream[u]]+i] < 0 {
			flags[u] |= tsTail
		}
		for _, v := range g.adj[u] {
			if stream[v] != stream[u] || pos[v] != pos[u]+1 {
				flags[v] |= tsHead
				flags[u] |= tsTail
			}
		}
	}

	// Span anchors: headOf[u] is the nearest head at or before u in its
	// stream, tailOf[u] the nearest tail at or after — the rows interior
	// nodes derive from. The forward walk also measures the spans for
	// telemetry.
	headOf := s.i32s(&s.tsHeadOf, n)
	tailOf := s.i32s(&s.tsTailOf, n)
	spans, maxSpan := 0, 0
	for p := 0; p < width; p++ {
		base := strStart[p]
		cur, curLen := int32(-1), 0
		for i := int32(0); i < t.strLen[p]; i++ {
			u := nodeAt[base+i]
			if u < 0 {
				cur, curLen = -1, 0
				continue
			}
			if flags[u]&tsHead != 0 || cur < 0 {
				cur, curLen = u, 0
				spans++
			}
			curLen++
			if curLen > maxSpan {
				maxSpan = curLen
			}
			headOf[u] = cur
		}
		cur = int32(-1)
		for i := t.strLen[p] - 1; i >= 0; i-- {
			u := nodeAt[base+i]
			if u < 0 {
				cur = -1
				continue
			}
			if flags[u]&tsTail != 0 || cur < 0 {
				cur = u
			}
			tailOf[u] = cur
		}
	}

	// Frontier components: the ones holding a head (forward) or a tail
	// (backward) — the only rows the serial skeletons compute. Interior
	// nodes are singleton components, so the skeleton and fill row sets
	// are disjoint.
	compFlags := s.bytes(&s.tsCompFlags, k)
	for i := range compFlags {
		compFlags[i] = 0
	}
	for u := 0; u < n; u++ {
		compFlags[comp[u]] |= flags[u]
	}

	// Forward skeleton, descending component ids. Tarjan numbers edges
	// from higher ids to lower, so every contribution — a head's own
	// (higher-id) component row, or an interior predecessor's head row,
	// which lies higher still — is final before it is folded. The in-edge
	// CSR covers only edges into head components.
	inOff := s.i32s(&s.tsInOff, k+1)
	for i := range inOff {
		inOff[i] = 0
	}
	for u := 0; u < n; u++ {
		cu := comp[u]
		for _, v := range g.adj[u] {
			if cv := comp[v]; cv != cu && compFlags[cv]&tsHead != 0 {
				inOff[cv+1]++
			}
		}
	}
	for c := 0; c < k; c++ {
		inOff[c+1] += inOff[c]
	}
	inCur := s.i32s(&s.tsInCur, k)
	copy(inCur, inOff[:k])
	inSrc := s.i32s(&s.tsInSrc, int(inOff[k]))
	for u := 0; u < n; u++ {
		cu := comp[u]
		for _, v := range g.adj[u] {
			if cv := comp[v]; cv != cu && compFlags[cv]&tsHead != 0 {
				inSrc[inCur[cv]] = int32(u)
				inCur[cv]++
			}
		}
	}
	for c := k - 1; c >= 0; c-- {
		if compFlags[c]&tsHead == 0 {
			continue
		}
		row := t.fw[c*width : (c+1)*width]
		for _, u := range scc.Members[c] {
			if e := uint32(pos[u]) + 1; e > row[stream[u]] {
				row[stream[u]] = e
			}
		}
		for _, u32 := range inSrc[inOff[c]:inOff[c+1]] {
			u := int(u32)
			src := u
			if flags[u]&tsHead == 0 {
				src = int(headOf[u])
			}
			srow := t.fw[comp[src]*width : (comp[src]+1)*width]
			for i, x := range srow {
				if x > row[i] {
					row[i] = x
				}
			}
			if flags[u]&tsHead == 0 {
				if e := uint32(pos[u]) + 1; e > row[stream[u]] {
					row[stream[u]] = e
				}
			}
		}
	}

	// Backward skeleton, ascending component ids (successors are final
	// before any predecessor reads them). An interior successor v
	// contributes its tail's frontier with stream(v) ↦ pos(v).
	for c := 0; c < k; c++ {
		if compFlags[c]&tsTail == 0 {
			continue
		}
		row := t.bw[c*width : (c+1)*width]
		copy(row, t.strLen)
		for _, u := range scc.Members[c] {
			for _, v := range g.adj[u] {
				if comp[v] == c {
					continue
				}
				src := v
				if flags[v]&tsTail == 0 {
					src = int(tailOf[v])
				}
				srow := t.bw[comp[src]*width : (comp[src]+1)*width]
				for i, x := range srow {
					if x < row[i] {
						row[i] = x
					}
				}
				if flags[v]&tsTail == 0 {
					if pos[v] < row[stream[v]] {
						row[stream[v]] = pos[v]
					}
				}
			}
		}
		for _, u := range scc.Members[c] {
			if pos[u] < row[stream[u]] {
				row[stream[u]] = pos[u]
			}
		}
	}

	// Interior fill: every non-head copies its span head's clock with the
	// own-stream coordinate bumped; every non-tail mirrors for the
	// backward frontier. Each write lands in the node's own singleton-
	// component row — disjoint from every other write and from the
	// skeleton rows — and reads only skeleton rows, so the fill
	// parallelizes over arbitrary node ranges with no synchronization and
	// a schedule-independent result.
	fillRange := func(lo, hi int) {
		for u := lo; u < hi; u++ {
			f := flags[u]
			if f&tsHead == 0 {
				c, h := comp[u], comp[headOf[u]]
				row := t.fw[c*width : (c+1)*width]
				copy(row, t.fw[h*width:(h+1)*width])
				row[stream[u]] = uint32(pos[u]) + 1
			}
			if f&tsTail == 0 {
				c, tl := comp[u], comp[tailOf[u]]
				row := t.bw[c*width : (c+1)*width]
				copy(row, t.bw[tl*width:(tl+1)*width])
				row[stream[u]] = pos[u]
			}
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 1 && n >= fillParallelCutoff {
		chunk := (n + workers - 1) / workers
		var wg sync.WaitGroup
		for lo := 0; lo < n; lo += chunk {
			hi := min(lo+chunk, n)
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				fillRange(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	} else {
		fillRange(0, n)
	}

	if reg := telemetry.Default(); reg.Enabled() {
		reg.Counter("graph.vc.builds").Inc()
		reg.Counter("graph.vc.nodes").Add(int64(n))
		reg.Counter("graph.vc.components").Add(int64(k))
		reg.Counter("graph.vc.clock_words").Add(int64(2 * k * width))
		reg.Counter("graph.ts.spans").Add(int64(spans))
		reg.Gauge("graph.ts.span_max_events").SetMax(int64(maxSpan))
	}
	return t
}

// SCC returns the component structure computed for the graph.
func (t *Timestamps) SCC() *SCC { return t.scc }

// Width returns the clock width (number of streams).
func (t *Timestamps) Width() int { return t.width }

// VCOf returns node v's forward vector clock — the clock of its
// component, aliasing the shared slab; callers must not mutate it.
func (t *Timestamps) VCOf(v int) vclock.VC {
	c := t.scc.Comp[v]
	return vclock.VC(t.fw[c*t.width : (c+1)*t.width])
}

// EpochOf returns node u's epoch: position pos(u)+1 on stream(u). A
// clock covers the epoch exactly when its node is reached from u.
func (t *Timestamps) EpochOf(u int) vclock.Epoch {
	return vclock.Epoch{P: int(t.stream[u]), C: uint32(t.pos[u]) + 1}
}

// Reaches reports whether there is a (possibly empty) path from u to v.
// Reaches(u, u) is always true. The compare is vclock.OrderedFast: the
// O(1) epoch check decides, with the full clock scan as the oracle slow
// path.
func (t *Timestamps) Reaches(u, v int) bool {
	if u == v {
		return true
	}
	return vclock.OrderedFast(t.EpochOf(u), t.VCOf(u), t.VCOf(v))
}

// ReachesProper reports whether there is a non-trivial path from u to v:
// u≠v on a path, or u on a cycle when u == v.
func (t *Timestamps) ReachesProper(u, v int) bool {
	if u == v {
		return len(t.scc.Members[t.scc.Comp[u]]) > 1
	}
	return t.Reaches(u, v)
}

// Ordered reports whether u and v are ordered either way — the negation
// of the paper's "not ordered by the hb1 relation" race test.
func (t *Timestamps) Ordered(u, v int) bool {
	return t.Reaches(u, v) || t.Reaches(v, u)
}

// Window brackets event u against stream p in two slab reads: events of
// p at positions < predCount reach u, and events at positions ≥ succPos
// are reached from u. Program order makes both sets a prefix and a
// suffix respectively, and both bounds are monotone non-decreasing as u
// advances along its own stream — the invariants the detector's
// two-pointer sweep and the provenance certificates rest on. predCount
// and succPos both lie in [0, stream length]; the window may be empty
// (predCount ≥ succPos happens on hb1 cycles and for u's own stream).
func (t *Timestamps) Window(u, p int) (predCount, succPos int32) {
	c := t.scc.Comp[u]
	return int32(t.fw[c*t.width+p]), t.bw[c*t.width+p]
}

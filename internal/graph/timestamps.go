package graph

import (
	"fmt"

	"weakrace/internal/telemetry"
	"weakrace/internal/vclock"
)

// Timestamps answers reachability queries on a stream-structured digraph
// — one whose nodes are partitioned into per-processor streams, each
// stream chained by program-order edges — with vector-clock timestamps
// computed in a single topological pass, instead of bitset closure rows.
// This is the shape of the detector's happens-before-1 graph (po chains
// plus so1 edges), and the pass is the linear-time timestamping of
// Kini/Mathur-style happens-before detectors lifted to the post-mortem
// graph.
//
// hb1 may contain cycles on a weak execution (paper §3.1), so the clocks
// are assigned per strongly connected component: Tarjan numbers
// components in reverse topological order, and one descending-id sweep
// pushes each component's forward clock into its successors. The forward
// clock of component c is
//
//	fw[c][p] = 1 + max{ pos(y) : y in stream p, comp(y) reaches c }
//
// (0 when no p-event reaches c). Program order makes "reaches x" a
// PREFIX of each stream, so that single per-stream maximum characterizes
// the entire ancestor cone exactly — on the acyclic part each component
// is one event and the clock is the classic event timestamp; cycles are
// handled exactly because members of an SCC share one clock. Hence
//
//	u reaches v  ⟺  u == v  or  fw[comp(v)][stream(u)] > pos(u),
//
// an O(1) epoch compare (vclock.Epoch.Covered). A mirrored ascending-id
// sweep computes the backward frontier bw[c][p], the least position of
// stream p reached from c, so Window brackets a whole stream against an
// event with two slab reads — the quantity the race sweep and the
// provenance certificates consume directly.
//
// The clocks are exact only when every stream's events form a
// program-order chain in g; arbitrary digraphs without that structure
// must keep using Reachability.
type Timestamps struct {
	scc    *SCC
	stream []int32 // stream[u]: the stream (processor) of node u
	pos    []int32 // pos[u]: u's position within its stream
	width  int
	fw     []uint32 // forward clocks, NumComponents x width
	bw     []int32  // backward frontiers, NumComponents x width
	strLen []int32  // events per stream (backward-frontier "none" value)
}

// NewTimestamps computes vector-clock timestamps for g, whose node u
// belongs to stream stream[u] (< width) at position pos[u], with each
// stream's events chained in program order. stream and pos are copied,
// so arena-backed callers may reuse their buffers; s (optional) supplies
// the Tarjan scratch.
func NewTimestamps(g *Digraph, stream, pos []int32, width int, s *Scratch) *Timestamps {
	defer telemetry.Default().StartSpan("graph.timestamps").End()
	n := g.N()
	if len(stream) != n || len(pos) != n {
		panic(fmt.Sprintf("graph: NewTimestamps: %d nodes but %d streams / %d positions",
			n, len(stream), len(pos)))
	}
	scc := StronglyConnectedOverlay(g, nil, s)
	k := scc.NumComponents()
	t := &Timestamps{
		scc:    scc,
		stream: append([]int32(nil), stream...),
		pos:    append([]int32(nil), pos...),
		width:  width,
		fw:     make([]uint32, k*width),
		bw:     make([]int32, k*width),
		strLen: make([]int32, width),
	}
	for u := 0; u < n; u++ {
		if l := pos[u] + 1; l > t.strLen[stream[u]] {
			t.strLen[stream[u]] = l
		}
	}
	// Forward pass, descending component ids. Tarjan assigns a component
	// its id only after every component it reaches, so edges cross from
	// higher ids to lower ids and descending order visits each component
	// after all of its predecessors have pushed their clocks into it:
	// fold the members' own positions, then push the finished clock along
	// every outgoing cross-component edge.
	for c := k - 1; c >= 0; c-- {
		row := t.fw[c*width : (c+1)*width]
		for _, u := range scc.Members[c] {
			if e := uint32(pos[u]) + 1; e > row[stream[u]] {
				row[stream[u]] = e
			}
		}
		for _, u := range scc.Members[c] {
			for _, v := range g.adj[u] {
				if cv := scc.Comp[v]; cv != c {
					dst := t.fw[cv*width : (cv+1)*width]
					for i, x := range row {
						if x > dst[i] {
							dst[i] = x
						}
					}
				}
			}
		}
	}
	// Backward pass, ascending component ids (successors are final before
	// any predecessor reads them): pull the successors' frontiers, then
	// fold the members' own positions.
	for c := 0; c < k; c++ {
		row := t.bw[c*width : (c+1)*width]
		copy(row, t.strLen)
		for _, u := range scc.Members[c] {
			for _, v := range g.adj[u] {
				if cv := scc.Comp[v]; cv != c {
					src := t.bw[cv*width : (cv+1)*width]
					for i, x := range src {
						if x < row[i] {
							row[i] = x
						}
					}
				}
			}
		}
		for _, u := range scc.Members[c] {
			if pos[u] < row[stream[u]] {
				row[stream[u]] = pos[u]
			}
		}
	}
	if reg := telemetry.Default(); reg.Enabled() {
		reg.Counter("graph.vc.builds").Inc()
		reg.Counter("graph.vc.nodes").Add(int64(n))
		reg.Counter("graph.vc.components").Add(int64(k))
		reg.Counter("graph.vc.clock_words").Add(int64(2 * k * width))
	}
	return t
}

// SCC returns the component structure computed for the graph.
func (t *Timestamps) SCC() *SCC { return t.scc }

// Width returns the clock width (number of streams).
func (t *Timestamps) Width() int { return t.width }

// VCOf returns node v's forward vector clock — the clock of its
// component, aliasing the shared slab; callers must not mutate it.
func (t *Timestamps) VCOf(v int) vclock.VC {
	c := t.scc.Comp[v]
	return vclock.VC(t.fw[c*t.width : (c+1)*t.width])
}

// EpochOf returns node u's epoch: position pos(u)+1 on stream(u). A
// clock covers the epoch exactly when its node is reached from u.
func (t *Timestamps) EpochOf(u int) vclock.Epoch {
	return vclock.Epoch{P: int(t.stream[u]), C: uint32(t.pos[u]) + 1}
}

// Reaches reports whether there is a (possibly empty) path from u to v.
// Reaches(u, u) is always true. The compare is vclock.OrderedFast: the
// O(1) epoch check decides, with the full clock scan as the oracle slow
// path.
func (t *Timestamps) Reaches(u, v int) bool {
	if u == v {
		return true
	}
	return vclock.OrderedFast(t.EpochOf(u), t.VCOf(u), t.VCOf(v))
}

// ReachesProper reports whether there is a non-trivial path from u to v:
// u≠v on a path, or u on a cycle when u == v.
func (t *Timestamps) ReachesProper(u, v int) bool {
	if u == v {
		return len(t.scc.Members[t.scc.Comp[u]]) > 1
	}
	return t.Reaches(u, v)
}

// Ordered reports whether u and v are ordered either way — the negation
// of the paper's "not ordered by the hb1 relation" race test.
func (t *Timestamps) Ordered(u, v int) bool {
	return t.Reaches(u, v) || t.Reaches(v, u)
}

// Window brackets event u against stream p in two slab reads: events of
// p at positions < predCount reach u, and events at positions ≥ succPos
// are reached from u. Program order makes both sets a prefix and a
// suffix respectively, and both bounds are monotone non-decreasing as u
// advances along its own stream — the invariants the detector's
// two-pointer sweep and the provenance certificates rest on. predCount
// and succPos both lie in [0, stream length]; the window may be empty
// (predCount ≥ succPos happens on hb1 cycles and for u's own stream).
func (t *Timestamps) Window(u, p int) (predCount, succPos int32) {
	c := t.scc.Comp[u]
	return int32(t.fw[c*t.width+p]), t.bw[c*t.width+p]
}

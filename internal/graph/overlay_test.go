package graph

import (
	"math/rand"
	"testing"
)

// randomOverlay draws a sparse extra-adjacency for a graph of n nodes —
// the shape of core's race-partner lists.
func randomOverlay(rng *rand.Rand, n int, p float64) [][]int32 {
	extra := make([][]int32, n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < p {
				extra[u] = append(extra[u], int32(v))
			}
		}
	}
	return extra
}

// explicitUnion materializes g ⊕ extra the way the pre-overlay code did:
// clone and add each overlay edge.
func explicitUnion(g *Digraph, extra [][]int32) *Digraph {
	u := g.Clone()
	for from, tos := range extra {
		for _, to := range tos {
			u.AddEdgeUnique(from, int(to))
		}
	}
	return u
}

// sameComponents reports whether two SCC decompositions induce the same
// partition of the nodes, ignoring component numbering.
func sameComponents(a, b *SCC) bool {
	if len(a.Comp) != len(b.Comp) || a.NumComponents() != b.NumComponents() {
		return false
	}
	fwd := map[int]int{}
	rev := map[int]int{}
	for v := range a.Comp {
		ca, cb := a.Comp[v], b.Comp[v]
		if m, ok := fwd[ca]; ok && m != cb {
			return false
		}
		if m, ok := rev[cb]; ok && m != ca {
			return false
		}
		fwd[ca] = cb
		rev[cb] = ca
	}
	return true
}

// The overlay Tarjan must produce the same component partition as running
// the classic Tarjan on the materialized union graph, with and without a
// reused Scratch.
func TestStronglyConnectedOverlayMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var s Scratch
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(30)
		g := randomGraph(rng, n, rng.Float64()*0.2)
		extra := randomOverlay(rng, n, rng.Float64()*0.1)
		want := StronglyConnected(explicitUnion(g, extra))
		got := StronglyConnectedOverlay(g, extra, &s)
		if !sameComponents(got, want) {
			t.Fatalf("trial %d: overlay SCC differs from explicit:\ngot  %+v\nwant %+v", trial, got, want)
		}
		// Members must be consistent with Comp.
		for c, members := range got.Members {
			for _, v := range members {
				if got.Comp[v] != c {
					t.Fatalf("trial %d: member %d of comp %d has Comp %d", trial, v, c, got.Comp[v])
				}
			}
		}
	}
}

// CondensationOverlay ⊕ CondReach must answer exactly the reachability
// queries of the materialized union graph, node-level and
// component-level.
func TestCondReachMatchesExplicitReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	var s Scratch
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(25)
		g := randomGraph(rng, n, rng.Float64()*0.15)
		extra := randomOverlay(rng, n, rng.Float64()*0.1)
		union := explicitUnion(g, extra)

		scc := StronglyConnectedOverlay(g, extra, &s)
		dag := CondensationOverlay(g, extra, scc, &s)
		cr := NewCondReach(dag, scc)
		ref := NewReachability(union)

		for u := 0; u < n; u++ {
			brute := bruteReach(union, u)
			for v := 0; v < n; v++ {
				if got, want := cr.Reaches(u, v), brute[v]; got != want {
					t.Fatalf("trial %d: CondReach.Reaches(%d,%d) = %v, want %v", trial, u, v, got, want)
				}
				if got, want := cr.ComponentReaches(scc.Comp[u], scc.Comp[v]), ref.Reaches(u, v); got != want {
					t.Fatalf("trial %d: ComponentReaches(%d,%d) = %v, want %v",
						trial, scc.Comp[u], scc.Comp[v], got, want)
				}
			}
		}
	}
}

// The condensation built over the overlay must be acyclic and must carry
// exactly the cross-component edges of the union graph, deduplicated.
func TestCondensationOverlayMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(25)
		g := randomGraph(rng, n, rng.Float64()*0.2)
		extra := randomOverlay(rng, n, rng.Float64()*0.1)
		union := explicitUnion(g, extra)

		scc := StronglyConnectedOverlay(g, extra, nil)
		dag := CondensationOverlay(g, extra, scc, nil)
		if !IsAcyclic(dag) {
			t.Fatalf("trial %d: condensation has a cycle", trial)
		}
		want := map[[2]int]bool{}
		for u := 0; u < n; u++ {
			for _, v := range union.Succ(u) {
				if cu, cv := scc.Comp[u], scc.Comp[v]; cu != cv {
					want[[2]int{cu, cv}] = true
				}
			}
		}
		got := map[[2]int]bool{}
		for cu := 0; cu < dag.N(); cu++ {
			for _, cv := range dag.Succ(cu) {
				e := [2]int{cu, cv}
				if got[e] {
					t.Fatalf("trial %d: duplicate condensation edge %v", trial, e)
				}
				got[e] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d condensation edges, want %d", trial, len(got), len(want))
		}
		for e := range want {
			if !got[e] {
				t.Fatalf("trial %d: condensation missing edge %v", trial, e)
			}
		}
	}
}

// AddEdgeUnique and HasEdge must stay correct across the degree threshold
// where the per-node index kicks in, including plain AddEdge calls
// interleaved after the index is built.
func TestEdgeIndexAcrossThreshold(t *testing.T) {
	g := New(200)
	// Push node 0 well past idxThreshold with unique edges, then re-add
	// every one: duplicates must be rejected before and after the index
	// exists, leaving the edge count unchanged.
	for v := 1; v <= 3*idxThreshold; v++ {
		g.AddEdgeUnique(0, v)
	}
	for v := 1; v <= 3*idxThreshold; v++ {
		g.AddEdgeUnique(0, v)
	}
	if g.M() != 3*idxThreshold {
		t.Fatalf("M() = %d, want %d", g.M(), 3*idxThreshold)
	}
	// AddEdge must keep the index coherent: the new edge is immediately
	// visible to HasEdge, and AddEdgeUnique rejects it afterwards.
	g.AddEdge(0, 150)
	if !g.HasEdge(0, 150) {
		t.Fatal("HasEdge misses an edge added by AddEdge after index build")
	}
	g.AddEdgeUnique(0, 150)
	if g.M() != 3*idxThreshold+1 {
		t.Fatalf("AddEdgeUnique re-inserted an edge added by AddEdge: M() = %d", g.M())
	}
	for v := 1; v <= 3*idxThreshold; v++ {
		if !g.HasEdge(0, v) {
			t.Fatalf("HasEdge(0,%d) = false", v)
		}
	}
	if g.HasEdge(0, 199) {
		t.Fatal("HasEdge reports a nonexistent edge")
	}
	// Low-degree nodes never build an index and stay correct.
	g.AddEdgeUnique(5, 6)
	if !g.HasEdge(5, 6) || g.HasEdge(6, 5) {
		t.Fatal("low-degree HasEdge wrong")
	}
}

// Differential check of the indexed HasEdge path against a model map on
// random interleavings of AddEdge, AddEdgeUnique, and HasEdge.
func TestEdgeIndexRandomizedAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		g := New(n)
		model := map[[2]int]bool{}
		for step := 0; step < 500; step++ {
			u, v := rng.Intn(n), rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				g.AddEdge(u, v)
				model[[2]int{u, v}] = true
			case 1:
				before := g.M()
				g.AddEdgeUnique(u, v)
				inserted := g.M() == before+1
				if inserted == model[[2]int{u, v}] {
					t.Fatalf("trial %d step %d: AddEdgeUnique(%d,%d) disagreement", trial, step, u, v)
				}
				model[[2]int{u, v}] = true
			case 2:
				if g.HasEdge(u, v) != model[[2]int{u, v}] {
					t.Fatalf("trial %d step %d: HasEdge(%d,%d) disagreement", trial, step, u, v)
				}
			}
		}
	}
}

package graph

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// line returns the path graph 0→1→…→n-1.
func line(n int) *Digraph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// cycle returns the cycle graph 0→1→…→n-1→0.
func cycle(n int) *Digraph {
	g := line(n)
	g.AddEdge(n-1, 0)
	return g
}

func TestBasicAccessors(t *testing.T) {
	g := New(3)
	if g.N() != 3 || g.M() != 0 {
		t.Fatalf("N,M = %d,%d; want 3,0", g.N(), g.M())
	}
	g.AddEdge(0, 1)
	g.AddEdge(0, 1) // parallel edge allowed
	g.AddEdgeUnique(0, 1)
	g.AddEdgeUnique(0, 2)
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3 (unique suppressed one duplicate)", g.M())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("HasEdge wrong")
	}
	if len(g.Succ(0)) != 3 {
		t.Fatalf("Succ(0) = %v", g.Succ(0))
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	New(2).AddEdge(0, 2)
}

func TestCloneIndependent(t *testing.T) {
	g := line(3)
	c := g.Clone()
	c.AddEdge(2, 0)
	if g.HasEdge(2, 0) {
		t.Fatal("Clone shares adjacency storage")
	}
	if g.M() != 2 || c.M() != 3 {
		t.Fatalf("edge counts g=%d c=%d", g.M(), c.M())
	}
}

func TestReverse(t *testing.T) {
	g := line(3)
	r := g.Reverse()
	if !r.HasEdge(1, 0) || !r.HasEdge(2, 1) || r.HasEdge(0, 1) {
		t.Fatal("Reverse wrong")
	}
}

func TestSCCLine(t *testing.T) {
	scc := StronglyConnected(line(4))
	if scc.NumComponents() != 4 {
		t.Fatalf("components = %d, want 4", scc.NumComponents())
	}
	// Tarjan numbering is reverse topological: node 3 gets component 0.
	for i := 0; i < 4; i++ {
		if scc.Comp[i] != 3-i {
			t.Fatalf("Comp[%d] = %d, want %d", i, scc.Comp[i], 3-i)
		}
	}
}

func TestSCCCycle(t *testing.T) {
	scc := StronglyConnected(cycle(5))
	if scc.NumComponents() != 1 {
		t.Fatalf("components = %d, want 1", scc.NumComponents())
	}
	for u := 0; u < 5; u++ {
		if !scc.SameComponent(0, u) {
			t.Fatalf("nodes 0 and %d not in same component", u)
		}
	}
	if len(scc.Members[0]) != 5 {
		t.Fatalf("Members[0] = %v", scc.Members[0])
	}
}

func TestSCCTwoCyclesBridge(t *testing.T) {
	// 0↔1 → 2↔3, plus isolated 4.
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2)
	scc := StronglyConnected(g)
	if scc.NumComponents() != 3 {
		t.Fatalf("components = %d, want 3", scc.NumComponents())
	}
	if !scc.SameComponent(0, 1) || !scc.SameComponent(2, 3) || scc.SameComponent(1, 2) || scc.SameComponent(4, 0) {
		t.Fatalf("component assignment wrong: %v", scc.Comp)
	}
	// Reverse topological numbering: {2,3} must be numbered before {0,1}.
	if scc.Comp[2] >= scc.Comp[0] {
		t.Fatalf("condensation numbering not reverse-topological: %v", scc.Comp)
	}
}

func TestCondensation(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(1, 2) // duplicate cross edge must collapse
	g.AddEdge(2, 3)
	scc := StronglyConnected(g)
	dag := Condensation(g, scc)
	if dag.N() != 3 {
		t.Fatalf("condensation nodes = %d, want 3", dag.N())
	}
	if dag.M() != 2 {
		t.Fatalf("condensation edges = %d, want 2 (duplicates collapsed)", dag.M())
	}
	if !IsAcyclic(dag) {
		t.Fatal("condensation has a cycle")
	}
}

func TestReachabilityLine(t *testing.T) {
	r := NewReachability(line(4))
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			want := u <= v
			if got := r.Reaches(u, v); got != want {
				t.Fatalf("Reaches(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
	if r.ReachesProper(2, 2) {
		t.Fatal("ReachesProper(2,2) on a line should be false")
	}
	if !r.Ordered(0, 3) || !r.Ordered(3, 0) {
		t.Fatal("Ordered symmetric check failed")
	}
}

func TestReachabilityDiamondUnordered(t *testing.T) {
	// 0→1, 0→2, 1→3, 2→3: 1 and 2 are unordered (a "race" shape).
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	r := NewReachability(g)
	if r.Ordered(1, 2) {
		t.Fatal("diamond arms reported ordered")
	}
	if !r.Reaches(0, 3) {
		t.Fatal("0 should reach 3")
	}
}

func TestReachabilityWithCycle(t *testing.T) {
	// 0→1→2→1 (cycle {1,2}), 2→3.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	g.AddEdge(2, 3)
	r := NewReachability(g)
	if !r.Reaches(1, 1) || !r.Reaches(2, 1) || !r.Reaches(1, 3) {
		t.Fatal("cycle reachability wrong")
	}
	if !r.ReachesProper(1, 1) {
		t.Fatal("node on cycle should properly reach itself")
	}
	if r.ReachesProper(0, 0) {
		t.Fatal("node off cycle should not properly reach itself")
	}
	if r.Reaches(3, 0) {
		t.Fatal("3 should not reach 0")
	}
}

func TestComponentReaches(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // comp A
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2) // comp B
	r := NewReachability(g)
	scc := r.SCC()
	ca, cb := scc.Comp[0], scc.Comp[2]
	if !r.ComponentReaches(ca, cb) {
		t.Fatal("component A should reach component B")
	}
	if r.ComponentReaches(cb, ca) {
		t.Fatal("component B should not reach component A")
	}
}

func TestTopologicalOrder(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(2, 4)
	order, err := TopologicalOrder(g)
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, 5)
	for i, v := range order {
		pos[v] = i
	}
	for u := 0; u < 5; u++ {
		for _, v := range g.Succ(u) {
			if pos[u] >= pos[v] {
				t.Fatalf("topological order violates edge %d→%d: %v", u, v, order)
			}
		}
	}
}

func TestTopologicalOrderCycleError(t *testing.T) {
	if _, err := TopologicalOrder(cycle(3)); err == nil {
		t.Fatal("cycle not reported")
	}
	if IsAcyclic(cycle(3)) {
		t.Fatal("IsAcyclic(cycle) = true")
	}
	if !IsAcyclic(line(3)) {
		t.Fatal("IsAcyclic(line) = false")
	}
}

// randomGraph builds a digraph with n nodes, edge probability p.
func randomGraph(rng *rand.Rand, n int, p float64) *Digraph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// bruteReach computes reachability by DFS for cross-checking.
func bruteReach(g *Digraph, u int) map[int]bool {
	seen := map[int]bool{u: true}
	stack := []int{u}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Succ(v) {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return seen
}

// Property: fast reachability matches brute-force DFS on random graphs.
func TestQuickReachabilityMatchesDFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n, 0.12)
		r := NewReachability(g)
		for u := 0; u < n; u++ {
			reach := bruteReach(g, u)
			for v := 0; v < n; v++ {
				if r.Reaches(u, v) != reach[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the lazy closure answers every query exactly like the eager
// one (and both match brute-force DFS), on random graphs including ones
// with cycles.
func TestQuickLazyReachabilityMatchesEager(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n, 0.12)
		eager := NewReachability(g)
		lazy := NewReachabilityLazy(g)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				want := eager.Reaches(u, v)
				if lazy.Reaches(u, v) != want {
					return false
				}
				if lazy.Ordered(u, v) != eager.Ordered(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Concurrent queries against one lazy closure must agree with the eager
// answers — run under -race this exercises the atomic row publication and
// the materialization mutex.
func TestLazyReachabilityConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 60
	g := randomGraph(rng, n, 0.08)
	eager := NewReachability(g)
	lazy := NewReachabilityLazy(g)
	var wg sync.WaitGroup
	errc := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker walks the query space from a different offset so
			// row materializations collide.
			for i := 0; i < n*n; i++ {
				q := (i + w*n*n/8) % (n * n)
				u, v := q/n, q%n
				if lazy.Reaches(u, v) != eager.Reaches(u, v) {
					select {
					case errc <- fmt.Sprintf("Reaches(%d, %d) mismatch", u, v):
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}
}

// Property: SCC partition is consistent with mutual reachability.
func TestQuickSCCMutualReachability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := randomGraph(rng, n, 0.15)
		scc := StronglyConnected(g)
		for u := 0; u < n; u++ {
			ru := bruteReach(g, u)
			for v := 0; v < n; v++ {
				mutual := ru[v] && bruteReach(g, v)[u]
				if scc.SameComponent(u, v) != mutual {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every SCC numbering is reverse-topological over the condensation.
func TestQuickSCCNumberingReverseTopological(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := randomGraph(rng, n, 0.15)
		scc := StronglyConnected(g)
		for u := 0; u < n; u++ {
			for _, v := range g.Succ(u) {
				if scc.Comp[u] != scc.Comp[v] && scc.Comp[u] < scc.Comp[v] {
					return false // cross edge must go to a lower id
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSCCDeepRecursionSafe(t *testing.T) {
	// A 200k-node path would overflow a recursive Tarjan; the iterative one
	// must handle it.
	const n = 200_000
	g := line(n)
	scc := StronglyConnected(g)
	if scc.NumComponents() != n {
		t.Fatalf("components = %d, want %d", scc.NumComponents(), n)
	}
}

func BenchmarkSCCRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 2000, 0.002)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StronglyConnected(g)
	}
}

func BenchmarkReachabilityBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 1000, 0.004)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewReachability(g)
	}
}

// Package graph implements the directed-graph machinery the detector needs:
// adjacency-list digraphs, Tarjan's strongly-connected-components algorithm,
// condensation, transitive reachability, and topological order.
//
// The happens-before-1 graph of a weak execution is NOT guaranteed to be
// acyclic (paper §3.1: "the so1 relation and hence the hb1 relation may
// contain cycles"), and the augmented graph G′ of §4.2 contains a cycle for
// every race edge by construction. Everything here therefore works on
// arbitrary digraphs: reachability is computed on the SCC condensation,
// which is always a DAG.
package graph

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"weakrace/internal/bitset"
	"weakrace/internal/telemetry"
)

// Digraph is a directed graph over nodes 0..N-1 with adjacency lists.
// Parallel edges are permitted (and harmless for reachability/SCC);
// AddEdgeUnique suppresses them where the caller prefers.
//
// A Digraph is not safe for concurrent use while it is being mutated;
// HasEdge and AddEdgeUnique may build a per-node successor index on
// high-degree nodes, so even query methods count as mutation here.
type Digraph struct {
	adj  [][]int
	nEdg int
	// idx[u] is a successor set for node u, built lazily once u's degree
	// crosses idxThreshold so HasEdge/AddEdgeUnique stay O(1) instead of
	// O(out-degree) — the linear scan is a quadratic trap when a caller
	// funnels many unique edges through one hub node. nil until any node
	// needs it; maintained by AddEdge once built.
	idx []map[int]struct{}
}

// idxThreshold is the out-degree at which HasEdge/AddEdgeUnique switch
// from a linear adjacency scan to a per-node successor set. Below it the
// scan wins on constant factors (and most nodes stay below it).
const idxThreshold = 16

// New returns a digraph with n nodes and no edges.
func New(n int) *Digraph {
	if n < 0 {
		panic(fmt.Sprintf("graph: New(%d): negative size", n))
	}
	return &Digraph{adj: make([][]int, n)}
}

// NewWithDegrees returns a digraph with len(deg) nodes and no edges,
// whose adjacency lists are pre-carved out of one edge slab with
// capacity deg[u] each. A caller that counts its out-degrees up front
// (the detector's hb1 builder) then adds every edge with zero per-node
// allocations; exceeding a declared degree still works — that node's
// list just falls off the slab and grows normally.
func NewWithDegrees(deg []int32) *Digraph {
	total := 0
	for _, d := range deg {
		total += int(d)
	}
	slab := make([]int, total)
	adj := make([][]int, len(deg))
	off := 0
	for u, d := range deg {
		end := off + int(d)
		adj[u] = slab[off:off:end]
		off = end
	}
	return &Digraph{adj: adj}
}

// NewPlaced returns a digraph with len(deg) nodes whose adjacency
// lists are carved at FULL length deg[u] out of one edge slab, for
// callers that compute every edge's final slot up front and write them
// with Place. It produces the same slab layout as NewWithDegrees; a
// builder that places edge u→v at the slot AddEdge would have appended
// it to yields a byte-identical adjacency structure — the detector's
// parallel hb1 fill relies on exactly this. The edge count assumes
// every slot is placed.
func NewPlaced(deg []int32) *Digraph {
	total := 0
	for _, d := range deg {
		total += int(d)
	}
	slab := make([]int, total)
	adj := make([][]int, len(deg))
	off := 0
	for u, d := range deg {
		end := off + int(d)
		adj[u] = slab[off:end:end]
		off = end
	}
	return &Digraph{adj: adj, nEdg: total}
}

// Place writes v into slot k of node u's pre-sized adjacency list (see
// NewPlaced). Concurrent Place calls are safe whenever their (u, k)
// slots are disjoint — the slab-disjointness discipline of the parallel
// graph fill.
func (g *Digraph) Place(u, k, v int) {
	g.adj[u][k] = v
}

// N returns the number of nodes.
func (g *Digraph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Digraph) M() int { return g.nEdg }

func (g *Digraph) check(v int) {
	if v < 0 || v >= len(g.adj) {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", v, len(g.adj)))
	}
}

// AddEdge adds the directed edge u→v.
func (g *Digraph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	g.adj[u] = append(g.adj[u], v)
	g.nEdg++
	if g.idx != nil && g.idx[u] != nil {
		g.idx[u][v] = struct{}{}
	}
}

// succSet returns node u's successor set, building it on first use once
// u's degree reaches idxThreshold; nil for low-degree nodes.
func (g *Digraph) succSet(u int) map[int]struct{} {
	if len(g.adj[u]) < idxThreshold {
		return nil
	}
	if g.idx == nil {
		g.idx = make([]map[int]struct{}, len(g.adj))
	}
	if g.idx[u] == nil {
		m := make(map[int]struct{}, 2*len(g.adj[u]))
		for _, w := range g.adj[u] {
			m[w] = struct{}{}
		}
		g.idx[u] = m
	}
	return g.idx[u]
}

// AddEdgeUnique adds u→v unless an identical edge already exists. For
// low-degree nodes it is an O(out-degree) scan; past idxThreshold it
// switches to a per-node successor set, so bulk unique insertion through
// one node is linear overall, not quadratic.
func (g *Digraph) AddEdgeUnique(u, v int) {
	g.check(u)
	g.check(v)
	if m := g.succSet(u); m != nil {
		if _, dup := m[v]; dup {
			return
		}
	} else {
		for _, w := range g.adj[u] {
			if w == v {
				return
			}
		}
	}
	g.AddEdge(u, v)
}

// Succ returns the successor list of u. The slice is owned by the graph and
// must not be mutated.
func (g *Digraph) Succ(u int) []int {
	g.check(u)
	return g.adj[u]
}

// HasEdge reports whether the edge u→v exists. O(out-degree) for
// low-degree nodes; O(1) via the successor set past idxThreshold.
func (g *Digraph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if m := g.succSet(u); m != nil {
		_, ok := m[v]
		return ok
	}
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the graph. The detector clones the
// happens-before-1 graph before augmenting it with race edges so callers
// keep an unaugmented view. The clone's successor index is rebuilt lazily
// rather than copied.
func (g *Digraph) Clone() *Digraph {
	c := &Digraph{adj: make([][]int, len(g.adj)), nEdg: g.nEdg}
	for i, a := range g.adj {
		if len(a) > 0 {
			c.adj[i] = append([]int(nil), a...)
		}
	}
	return c
}

// Reverse returns the graph with all edges flipped.
func (g *Digraph) Reverse() *Digraph {
	r := New(g.N())
	for u, a := range g.adj {
		for _, v := range a {
			r.AddEdge(v, u)
		}
	}
	return r
}

// SCC holds the strongly connected components of a digraph: Comp[v] is the
// component id of node v, and components are numbered in reverse
// topological order of the condensation (Tarjan's property: a component is
// assigned its id only after all components it can reach). Members lists
// the nodes of each component.
type SCC struct {
	Comp    []int
	Members [][]int

	maxSize int
}

// NumComponents returns the number of strongly connected components.
func (s *SCC) NumComponents() int { return len(s.Members) }

// MaxSize returns the size of the largest component. It is tracked while
// Tarjan closes components, so consumers (telemetry, reports) share one
// computation instead of each rescanning Members.
func (s *SCC) MaxSize() int { return s.maxSize }

// SameComponent reports whether u and v are in the same SCC — the paper's
// test for two race events being in the same partition (§4.2).
func (s *SCC) SameComponent(u, v int) bool { return s.Comp[u] == s.Comp[v] }

// Scratch holds reusable traversal buffers for StronglyConnectedOverlay
// and CondensationOverlay: the Tarjan bookkeeping arrays and DFS stacks,
// plus the packed-key buffer the condensation sort-dedupe uses. Only
// buffers that are NOT retained by the returned structures live here
// (SCC.Comp, SCC.Members, and the condensation's adjacency are always
// freshly allocated — callers keep them after the scratch is reused).
// A Scratch is not safe for concurrent use; pool one per worker.
type Scratch struct {
	index, low         []int
	onStack            []bool
	stack              []int
	callNode, callEdge []int
	keys               []uint64
	// Timestamp-pass scratch (NewTimestamps): per-node span flags and
	// span anchors, the stream-major node index, per-component frontier
	// flags, and the in-edge CSR the forward skeleton pass folds over.
	tsFlags            []uint8
	tsHeadOf, tsTailOf []int32
	tsNodeAt           []int32
	tsStrStart         []int32
	tsCompFlags        []uint8
	tsInOff, tsInCur   []int32
	tsInSrc            []int32
}

func (s *Scratch) ints(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	return (*buf)[:n]
}

func (s *Scratch) i32s(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	return (*buf)[:n]
}

func (s *Scratch) bytes(buf *[]uint8, n int) []uint8 {
	if cap(*buf) < n {
		*buf = make([]uint8, n)
	}
	return (*buf)[:n]
}

// StronglyConnected computes the SCCs of g using an iterative Tarjan
// algorithm (iterative so million-node traces cannot overflow the stack).
func StronglyConnected(g *Digraph) *SCC {
	return StronglyConnectedOverlay(g, nil, nil)
}

// StronglyConnectedOverlay computes the SCCs of the graph g ⊕ extra: the
// node set of g with, for every node u, the successors g.Succ(u) followed
// by extra[u]. The overlay graph is never materialized — this is how the
// detector runs Tarjan over the augmented graph G′ (hb1 edges plus
// per-node race-partner lists) without cloning a multi-million-edge
// digraph. extra may be nil (plain SCCs of g); s may be nil (scratch is
// allocated locally). The returned SCC's Comp/Members are freshly
// allocated and remain valid after s is reused.
func StronglyConnectedOverlay(g *Digraph, extra [][]int32, s *Scratch) *SCC {
	n := g.N()
	if extra != nil && len(extra) != n {
		panic(fmt.Sprintf("graph: overlay size %d, graph size %d", len(extra), n))
	}
	if s == nil {
		s = &Scratch{}
	}
	const unvisited = -1
	index := s.ints(&s.index, n)
	low := s.ints(&s.low, n)
	comp := make([]int, n)
	if cap(s.onStack) < n {
		s.onStack = make([]bool, n)
	}
	onStack := s.onStack[:n]
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
		onStack[i] = false
	}
	var (
		members [][]int
		maxSize int
		nextIdx int
	)
	// Every node lands in exactly one component, so all Members rows are
	// carved out of one n-int slab — one allocation instead of one per
	// component (the per-component append was a third of the detector's
	// allocation profile). The slab is freshly allocated, never pooled:
	// Members is retained by the caller after the scratch is reused.
	slab := make([]int, 0, n)
	stack := s.stack[:0]       // Tarjan's node stack
	callNode := s.callNode[:0] // explicit DFS stack: node
	callEdge := s.callEdge[:0] // explicit DFS stack: next successor index to visit
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		callNode = append(callNode[:0], root)
		callEdge = append(callEdge[:0], 0)
		index[root] = nextIdx
		low[root] = nextIdx
		nextIdx++
		stack = append(stack, root)
		onStack[root] = true
		for len(callNode) > 0 {
			// Scan the frame's remaining successors — g's own adjacency
			// first, then the overlay list — in one tight loop, keeping
			// the lowlink in a register. One stack round-trip per DFS
			// descent, not one per edge.
			v := callNode[len(callNode)-1]
			ei := callEdge[len(callEdge)-1]
			adj := g.adj[v]
			lowv := low[v]
			descended := false
			for {
				var w int
				if ei < len(adj) {
					w = adj[ei]
				} else if extra != nil {
					x := extra[v]
					if ei-len(adj) >= len(x) {
						break
					}
					w = int(x[ei-len(adj)])
				} else {
					break
				}
				ei++
				if index[w] == unvisited {
					callEdge[len(callEdge)-1] = ei
					low[v] = lowv
					index[w] = nextIdx
					low[w] = nextIdx
					nextIdx++
					stack = append(stack, w)
					onStack[w] = true
					callNode = append(callNode, w)
					callEdge = append(callEdge, 0)
					descended = true
					break
				} else if onStack[w] && index[w] < lowv {
					lowv = index[w]
				}
			}
			if descended {
				continue
			}
			low[v] = lowv
			// Finished v: pop the DFS frame, propagate lowlink, maybe
			// close a component.
			callNode = callNode[:len(callNode)-1]
			callEdge = callEdge[:len(callEdge)-1]
			if len(callNode) > 0 {
				parent := callNode[len(callNode)-1]
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				start := len(slab)
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = len(members)
					slab = append(slab, w)
					if w == v {
						break
					}
				}
				ms := slab[start:len(slab):len(slab)]
				if len(ms) > maxSize {
					maxSize = len(ms)
				}
				members = append(members, ms)
			}
		}
	}
	s.stack, s.callNode, s.callEdge = stack[:0], callNode[:0], callEdge[:0]
	// graph.scc.max_size tracks the largest SCC across EVERY SCC
	// computation in the process — hb1 graphs, explicit augmented graphs,
	// and implicit overlays alike. The per-analysis augmented-graph-only
	// view is detect.scc.max_size (see core.flushTelemetry).
	if reg := telemetry.Default(); reg.Enabled() {
		reg.Gauge("graph.scc.max_size").SetMax(int64(maxSize))
	}
	return &SCC{Comp: comp, Members: members, maxSize: maxSize}
}

// Condensation returns the DAG whose nodes are the SCCs of g, with an edge
// c1→c2 whenever some edge of g crosses from component c1 to c2. Duplicate
// cross edges are collapsed.
func Condensation(g *Digraph, scc *SCC) *Digraph {
	return CondensationOverlay(g, nil, scc, nil)
}

// CondensationOverlay builds the condensation DAG of the overlay graph
// g ⊕ extra (see StronglyConnectedOverlay) under the given component
// assignment. Cross edges are deduplicated by sorting packed (c1,c2)
// keys — no per-edge map — and the key buffer comes from s when non-nil.
// The returned DAG is freshly allocated and survives scratch reuse.
func CondensationOverlay(g *Digraph, extra [][]int32, scc *SCC, s *Scratch) *Digraph {
	k := scc.NumComponents()
	dag := New(k)
	var keys []uint64
	if s != nil {
		keys = s.keys[:0]
	}
	for u, a := range g.adj {
		cu := scc.Comp[u]
		for _, v := range a {
			if cv := scc.Comp[v]; cu != cv {
				keys = append(keys, uint64(cu)<<32|uint64(cv))
			}
		}
		if extra != nil {
			for _, v := range extra[u] {
				if cv := scc.Comp[v]; cu != cv {
					keys = append(keys, uint64(cu)<<32|uint64(cv))
				}
			}
		}
	}
	slices.Sort(keys)
	prev := uint64(1)<<63 | 1<<31 // component ids are < 2³¹, so this never collides
	for _, key := range keys {
		if key == prev {
			continue
		}
		prev = key
		dag.AddEdge(int(key>>32), int(key&0xffffffff))
	}
	if s != nil {
		s.keys = keys[:0]
	}
	return dag
}

// CondReach answers component-level reachability queries on a
// condensation DAG without building its transitive closure: the
// descendant set of a source component is computed by one memoized DFS
// the first time that component is queried. It exists for the partition
// order of Definition 4.1, where only the k data-race components (k ≪ C)
// are ever sources — the full closure pays for C rows to serve k.
// Queries are safe for concurrent use.
type CondReach struct {
	scc  *SCC
	dag  *Digraph
	rows []atomic.Pointer[bitset.Set]
}

// NewCondReach wraps a condensation DAG (components numbered in reverse
// topological order, as StronglyConnectedOverlay produces) for memoized
// reachability queries. No closure work happens until the first query.
func NewCondReach(dag *Digraph, scc *SCC) *CondReach {
	return &CondReach{scc: scc, dag: dag, rows: make([]atomic.Pointer[bitset.Set], dag.N())}
}

// SCC returns the component structure the queries are defined over.
func (r *CondReach) SCC() *SCC { return r.scc }

// ComponentReaches reports whether component c1 reaches c2 in the DAG.
func (r *CondReach) ComponentReaches(c1, c2 int) bool {
	if c1 == c2 {
		return true
	}
	if c1 < c2 {
		// Reverse-topological numbering: edges only go to lower ids.
		return false
	}
	row := r.rows[c1].Load()
	if row == nil {
		row = r.materialize(c1)
	}
	return row.Contains(c2)
}

// Reaches reports whether node u reaches node v in the underlying graph.
func (r *CondReach) Reaches(u, v int) bool {
	return r.ComponentReaches(r.scc.Comp[u], r.scc.Comp[v])
}

// MaterializeRows pre-builds the descendant rows of the given source
// components with a pool of workers pulling an atomic cursor, so a
// caller about to issue a batch of queries — the partition ordering's
// O(k²) loop — pays the DFS cost up front, in parallel, and every
// query afterwards is one lock-free load. Each row's content is a pure
// function of the DAG, so the result is identical for every worker
// count; concurrent materializers racing down a shared subtree may
// duplicate work, which compare-and-swap publication discards.
func (r *CondReach) MaterializeRows(comps []int, workers int) {
	build := func(c int) {
		if r.rows[c].Load() == nil {
			r.materialize(c)
		}
	}
	if workers > len(comps) {
		workers = len(comps)
	}
	if workers <= 1 {
		for _, c := range comps {
			build(c)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(comps) {
					return
				}
				build(comps[i])
			}
		}()
	}
	wg.Wait()
}

// materialize runs one DFS from c, reusing any descendant rows already
// built, and publishes the descendant set by compare-and-swap — the
// lazy-closure publication discipline: a row is stored only once fully
// built, its content is a pure function of the DAG (the unique
// descendant set of c), and every query after publication is one atomic
// load. Concurrent materializers may duplicate a DFS; whichever row
// publishes first wins and the duplicates are discarded, so no lock
// ever serializes the workers and the published rows are identical for
// any schedule.
func (r *CondReach) materialize(c int) *bitset.Set {
	row := bitset.New(r.dag.N())
	row.Add(c)
	stack := []int{c}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range r.dag.Succ(u) {
			if row.Contains(v) {
				continue
			}
			if rv := r.rows[v].Load(); rv != nil {
				row.Union(rv)
				continue
			}
			row.Add(v)
			stack = append(stack, v)
		}
	}
	if !r.rows[c].CompareAndSwap(nil, row) {
		return r.rows[c].Load() // lost the publication race; reuse the winner
	}
	if reg := telemetry.Default(); reg.Enabled() {
		reg.Counter("graph.condreach.rows_built").Inc()
	}
	return row
}

// Reachability answers "is there a path u⇝v?" queries on an arbitrary
// digraph by computing the transitive closure of the SCC condensation
// with bit-set rows. Two construction modes share the representation:
//
//   - NewReachability materializes every row up front — O(C²/64) memory
//     and one C-bit row union per condensation edge, all carved from a
//     single slab allocation.
//   - NewReachabilityLazy materializes a component's row (plus its not-yet
//     -built descendants) only when a query first needs it, from pooled
//     slabs — sparse query patterns, e.g. race searches where the level
//     pre-check resolves most pairs, never pay for the full closure.
//
// Before touching a row, every query runs two O(1) pre-checks that need
// no closure at all: Tarjan numbers components in reverse topological
// order, so a lower id can never reach a higher id; and a component can
// only reach components of strictly lower topological level (longest
// path to a sink). Queries are safe for concurrent use from multiple
// goroutines, including in lazy mode.
type Reachability struct {
	scc   *SCC
	dag   *Digraph
	level []int32 // level[c] = longest path (in edges) from component c to a sink
	rows  []atomic.Pointer[bitset.Set]
	words int // row width in 64-bit words
	lazy  bool

	mu   sync.Mutex // serializes lazy materialization; queries on built rows never take it
	slab []uint64   // current pooled slab lazy rows are carved from
}

// NewReachability precomputes the full closure for g: every row is
// materialized at construction, queries never allocate.
func NewReachability(g *Digraph) *Reachability {
	return newReachability(g, false)
}

// NewReachabilityLazy prepares reachability for g without materializing
// any closure rows; rows are built on demand, memoized, and pooled. Use
// it when most queries are expected to be resolved by the O(1)
// pre-checks (same component, component-id direction, topological
// level), e.g. the detector's race search on sparse-race traces.
func NewReachabilityLazy(g *Digraph) *Reachability {
	return newReachability(g, true)
}

func newReachability(g *Digraph, lazy bool) *Reachability {
	defer telemetry.Default().StartSpan("graph.reachability").End()
	scc := StronglyConnected(g)
	dag := Condensation(g, scc)
	k := scc.NumComponents()
	r := &Reachability{
		scc:   scc,
		dag:   dag,
		level: make([]int32, k),
		rows:  make([]atomic.Pointer[bitset.Set], k),
		words: (k + wordBits - 1) / wordBits,
		lazy:  lazy,
	}
	// Condensation edges go from higher to lower component ids, so
	// ascending order sees every successor before its predecessors.
	for c := 0; c < k; c++ {
		lvl := int32(0)
		for _, d := range dag.Succ(c) {
			if l := r.level[d] + 1; l > lvl {
				lvl = l
			}
		}
		r.level[c] = lvl
	}
	unions, built := 0, 0
	if !lazy && k > 0 {
		// Eager: the whole closure in one slab, rows in ascending id order.
		slab := make([]uint64, k*r.words)
		for c := 0; c < k; c++ {
			row := bitset.Wrap(slab[c*r.words : (c+1)*r.words : (c+1)*r.words])
			row.Add(c)
			for _, d := range dag.Succ(c) {
				row.Union(r.rows[d].Load())
			}
			unions += len(dag.Succ(c))
			r.rows[c].Store(row)
		}
		built = k
	}
	if reg := telemetry.Default(); reg.Enabled() {
		reg.Counter("graph.reach.builds").Inc()
		reg.Counter("graph.reach.nodes").Add(int64(g.N()))
		reg.Counter("graph.reach.edges").Add(int64(g.M()))
		reg.Counter("graph.reach.components").Add(int64(k))
		// Transitive-closure work actually performed: one k-bit row union
		// per condensation edge of a materialized row — the quadratic-ish
		// term the lazy mode and the level pre-check exist to avoid. A lazy
		// build that has materialized nothing yet registers no row counters
		// at all: a zero row count in flight logs must mean "built rows,
		// none needed", never "never touched a closure" (the misleading
		// zeros the -metrics output used to print on the implicit path).
		if built > 0 {
			reg.Counter("graph.reach.row_unions").Add(int64(unions))
			reg.Counter("graph.reach.rows_built").Add(int64(built))
		}
	}
	return r
}

// SCC returns the component structure computed for the graph.
func (r *Reachability) SCC() *SCC { return r.scc }

// wordBits mirrors the bitset word size for slab sizing.
const wordBits = 64

// newRowWords carves one row's backing storage from the pooled slab.
// Caller must hold mu.
func (r *Reachability) newRowWords() []uint64 {
	if len(r.slab) < r.words {
		// Pool slabs 64 rows at a time, capped at what is left to build.
		n := 64 * r.words
		if max := len(r.rows) * r.words; n > max {
			n = max
		}
		r.slab = make([]uint64, n)
	}
	w := r.slab[:r.words:r.words]
	r.slab = r.slab[r.words:]
	return w
}

// materialize builds (and memoizes) the closure row of component c,
// building any missing descendant rows first, in reverse topological
// order. Rows are published with atomic stores so concurrent queries on
// already-built rows never block on mu.
func (r *Reachability) materialize(c int) *bitset.Set {
	r.mu.Lock()
	defer r.mu.Unlock()
	if row := r.rows[c].Load(); row != nil {
		return row // lost the race to another materializer
	}
	built, unions := 0, 0
	type frame struct{ c, ei int }
	stack := []frame{{c, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succ := r.dag.Succ(f.c)
		if f.ei < len(succ) {
			d := succ[f.ei]
			f.ei++
			if r.rows[d].Load() == nil {
				stack = append(stack, frame{d, 0})
			}
			continue
		}
		row := bitset.Wrap(r.newRowWords())
		row.Add(f.c)
		for _, d := range succ {
			row.Union(r.rows[d].Load())
		}
		unions += len(succ)
		built++
		r.rows[f.c].Store(row)
		stack = stack[:len(stack)-1]
	}
	if reg := telemetry.Default(); reg.Enabled() {
		reg.Counter("graph.reach.rows_built").Add(int64(built))
		reg.Counter("graph.reach.row_unions").Add(int64(unions))
	}
	return r.rows[c].Load()
}

// compReaches answers component-level reachability with the O(1)
// pre-checks first, touching (and in lazy mode materializing) a closure
// row only when the pre-checks cannot decide.
func (r *Reachability) compReaches(cu, cv int) bool {
	if cu == cv {
		return true
	}
	// Component ids descend along condensation edges, and topological
	// level strictly decreases along any non-trivial path — either check
	// failing proves there is no path without consulting the closure.
	if cu < cv || r.level[cu] <= r.level[cv] {
		return false
	}
	row := r.rows[cu].Load()
	if row == nil {
		row = r.materialize(cu)
	}
	return row.Contains(cv)
}

// Reaches reports whether there is a (possibly empty) path from u to v.
// Reaches(u, u) is always true.
func (r *Reachability) Reaches(u, v int) bool {
	return r.compReaches(r.scc.Comp[u], r.scc.Comp[v])
}

// ReachesProper reports whether there is a non-trivial path from u to v:
// u≠v on a path, or u and v lie on a common cycle.
func (r *Reachability) ReachesProper(u, v int) bool {
	if u == v {
		// A proper path u⇝u exists iff u is on a cycle, i.e. its SCC has
		// more than one node or a self-loop. Self-loops never occur in
		// happens-before graphs, so component size is the test we need.
		return len(r.scc.Members[r.scc.Comp[u]]) > 1
	}
	return r.Reaches(u, v)
}

// Ordered reports whether u and v are ordered either way — the negation of
// the paper's "not ordered by the hb1 relation" race test.
func (r *Reachability) Ordered(u, v int) bool {
	return r.Reaches(u, v) || r.Reaches(v, u)
}

// ComponentReaches reports whether component c1 reaches component c2 in the
// condensation (used for the partition order P of Definition 4.1).
func (r *Reachability) ComponentReaches(c1, c2 int) bool {
	return r.compReaches(c1, c2)
}

// TopologicalOrder returns a topological order of g's nodes, or an error if
// g has a cycle. It is used by the SC-verifier to linearize candidate
// prefixes.
func TopologicalOrder(g *Digraph) ([]int, error) {
	n := g.N()
	indeg := make([]int, n)
	for _, a := range g.adj {
		for _, v := range a {
			indeg[v]++
		}
	}
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range g.adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("graph: cycle detected (%d of %d nodes ordered)", len(order), n)
	}
	return order, nil
}

// IsAcyclic reports whether g has no directed cycle.
func IsAcyclic(g *Digraph) bool {
	_, err := TopologicalOrder(g)
	return err == nil
}

package campaign

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"weakrace/internal/memmodel"
	"weakrace/internal/workload"
)

func TestCampaignRaceFree(t *testing.T) {
	rep, err := Run(Config{
		Workload: workload.LockedCounter(3, 3, -1),
		Model:    memmodel.WO,
		Seeds:    30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.RaceFree() || rep.Racy != 0 || len(rep.Races) != 0 {
		t.Fatalf("clean campaign racy: %+v", rep)
	}
	if rep.Executions != 30 {
		t.Fatalf("executions = %d", rep.Executions)
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data races") {
		t.Fatalf("report:\n%s", buf.String())
	}
}

func TestCampaignFindsInjectedBug(t *testing.T) {
	rep, err := Run(Config{
		Workload: workload.LockedCounter(3, 4, 1),
		Model:    memmodel.WO,
		Seeds:    40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RaceFree() {
		t.Fatal("buggy campaign race-free")
	}
	if len(rep.Races) == 0 {
		t.Fatal("no aggregated races")
	}
	// Every aggregated race involves the counter (location 0).
	for _, st := range rep.Races {
		if st.Race.Loc != 0 {
			t.Fatalf("unexpected race location: %v", st.Race)
		}
		if st.Occurrences <= 0 || st.Occurrences > rep.Executions {
			t.Fatalf("bad occurrence count: %+v", st)
		}
		if st.FirstPartition > st.Occurrences {
			t.Fatalf("first-partition count exceeds occurrences: %+v", st)
		}
		if st.ExampleSeed < 0 || st.ExampleSeed >= int64(rep.Executions) {
			t.Fatalf("bad example seed: %+v", st)
		}
	}
	// Sorted most frequent first.
	for i := 1; i < len(rep.Races); i++ {
		if rep.Races[i-1].Occurrences < rep.Races[i].Occurrences {
			t.Fatal("races not sorted by occurrences")
		}
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "replay") {
		t.Fatalf("report:\n%s", buf.String())
	}
}

// The report must not depend on worker parallelism.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	mk := func(workers int) *Report {
		rep, err := Run(Config{
			Workload: workload.ProducerConsumer(4, false),
			Model:    memmodel.RCsc,
			Seeds:    25,
			Workers:  workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep.Config = Config{} // ignore config in comparison
		return rep
	}
	a, b := mk(1), mk(8)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("reports differ across worker counts:\n%+v\n%+v", a, b)
	}
}

func TestCampaignErrors(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("nil workload accepted")
	}
}

func TestCampaignExampleSeedPrefersFirstPartition(t *testing.T) {
	rep, err := Run(Config{
		Workload: workload.RaceChain(3),
		Model:    memmodel.WO,
		Seeds:    20,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The stage-0 race is always in a first partition; its stats must say so.
	found := false
	for _, st := range rep.Races {
		if st.Race.Loc == 0 {
			found = true
			if st.FirstPartition != st.Occurrences {
				t.Fatalf("stage-0 race not always first: %+v", st)
			}
		} else if st.FirstPartition != 0 {
			t.Fatalf("later stage race marked first: %+v", st)
		}
	}
	if !found {
		t.Fatal("stage-0 race missing")
	}
}

package campaign

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"weakrace/internal/memmodel"
	"weakrace/internal/obs"
	"weakrace/internal/program"
	"weakrace/internal/sim"
	"weakrace/internal/telemetry"
	"weakrace/internal/telemetry/export"
	"weakrace/internal/workload"
)

func TestCampaignRaceFree(t *testing.T) {
	rep, err := Run(Config{
		Workload: workload.LockedCounter(3, 3, -1),
		Model:    memmodel.WO,
		Seeds:    30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.RaceFree() || rep.Racy != 0 || len(rep.Races) != 0 {
		t.Fatalf("clean campaign racy: %+v", rep)
	}
	if rep.Executions != 30 {
		t.Fatalf("executions = %d", rep.Executions)
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data races") {
		t.Fatalf("report:\n%s", buf.String())
	}
}

func TestCampaignFindsInjectedBug(t *testing.T) {
	rep, err := Run(Config{
		Workload: workload.LockedCounter(3, 4, 1),
		Model:    memmodel.WO,
		Seeds:    40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RaceFree() {
		t.Fatal("buggy campaign race-free")
	}
	if len(rep.Races) == 0 {
		t.Fatal("no aggregated races")
	}
	// Every aggregated race involves the counter (location 0).
	for _, st := range rep.Races {
		if st.Race.Loc != 0 {
			t.Fatalf("unexpected race location: %v", st.Race)
		}
		if st.Occurrences <= 0 || st.Occurrences > rep.Executions {
			t.Fatalf("bad occurrence count: %+v", st)
		}
		if st.FirstPartition > st.Occurrences {
			t.Fatalf("first-partition count exceeds occurrences: %+v", st)
		}
		if st.ExampleSeed < 0 || st.ExampleSeed >= int64(rep.Executions) {
			t.Fatalf("bad example seed: %+v", st)
		}
	}
	// Sorted most frequent first.
	for i := 1; i < len(rep.Races); i++ {
		if rep.Races[i-1].Occurrences < rep.Races[i].Occurrences {
			t.Fatal("races not sorted by occurrences")
		}
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "replay") {
		t.Fatalf("report:\n%s", buf.String())
	}
}

// The report must not depend on worker parallelism.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	mk := func(workers int) *Report {
		rep, err := Run(Config{
			Workload: workload.ProducerConsumer(4, false),
			Model:    memmodel.RCsc,
			Seeds:    25,
			Workers:  workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep.Config = Config{} // ignore config in comparison
		return rep
	}
	a, b := mk(1), mk(8)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("reports differ across worker counts:\n%+v\n%+v", a, b)
	}
}

// failWriter fails after n successful writes.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("sink full")
	}
	f.n--
	return len(p), nil
}

// TestRenderPropagatesWriteErrors: every write in the campaign report
// surfaces its error.
func TestRenderPropagatesWriteErrors(t *testing.T) {
	racy, err := Run(Config{
		Workload: workload.LockedCounter(3, 3, 1),
		Model:    memmodel.WO,
		Seeds:    20,
	})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(Config{
		Workload: workload.LockedCounter(3, 3, -1),
		Model:    memmodel.WO,
		Seeds:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 4; n++ {
		if err := racy.Render(&failWriter{n: n}); err == nil {
			t.Errorf("racy report with %d allowed writes: error swallowed", n)
		}
	}
	for n := 0; n < 2; n++ {
		if err := clean.Render(&failWriter{n: n}); err == nil {
			t.Errorf("clean report with %d allowed writes: error swallowed", n)
		}
	}
}

// TestCampaignSurvivesFailingSeeds: a seed that errors must not abort the
// campaign — the other seeds' evidence is kept and the failure is counted
// and surfaced in the report. Only an all-seeds failure is an error.
func TestCampaignSurvivesFailingSeeds(t *testing.T) {
	realRun := simRun
	defer func() { simRun = realRun }()
	injected := errors.New("injected simulator fault")
	simRun = func(p *program.Program, cfg sim.Config) (*sim.Result, error) {
		if cfg.Seed%5 == 2 { // seeds 2, 7, 12, 17
			return nil, injected
		}
		return realRun(p, cfg)
	}

	const seeds = 20
	rep, err := RunWithOptions(Config{
		Workload: workload.LockedCounter(3, 3, 1),
		Model:    memmodel.WO,
		Seeds:    seeds,
		Workers:  4,
	}, Options{})
	if err != nil {
		t.Fatalf("campaign aborted on a partial failure: %v", err)
	}
	if rep.Failed != 4 {
		t.Fatalf("Failed = %d, want 4", rep.Failed)
	}
	if rep.Executions != seeds-4 {
		t.Fatalf("Executions = %d, want %d", rep.Executions, seeds-4)
	}
	if !strings.Contains(rep.FirstError, "seed 2") || !strings.Contains(rep.FirstError, "injected simulator fault") {
		t.Fatalf("FirstError = %q", rep.FirstError)
	}
	// Surviving seeds still aggregate: the buggy workload races.
	if rep.RaceFree() || len(rep.Races) == 0 {
		t.Fatalf("surviving seeds discarded: %+v", rep)
	}
	for _, st := range rep.Races {
		if st.ExampleSeed%5 == 2 {
			t.Fatalf("failed seed cited as example: %+v", st)
		}
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "4 seeds failed") {
		t.Fatalf("report omits failures:\n%s", buf.String())
	}

	// All seeds failing is the only fatal case.
	simRun = func(p *program.Program, cfg sim.Config) (*sim.Result, error) {
		return nil, injected
	}
	if _, err := Run(Config{Workload: workload.LockedCounter(3, 3, 1), Model: memmodel.WO, Seeds: 5}); err == nil {
		t.Fatal("all-seeds failure returned no error")
	}
}

func TestCampaignErrors(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("nil workload accepted")
	}
	if _, err := RunWithOptions(Config{}, Options{}); err == nil {
		t.Fatal("nil workload accepted by RunWithOptions")
	}
}

// TestCampaignProgressCallback: progress reports every seed exactly once,
// strictly increasing, ending at the total — even with many workers.
func TestCampaignProgressCallback(t *testing.T) {
	const seeds = 24
	var calls []int
	rep, err := RunWithOptions(Config{
		Workload: workload.LockedCounter(3, 3, 1),
		Model:    memmodel.WO,
		Seeds:    seeds,
		Workers:  8,
	}, Options{
		Progress: func(done, total int) {
			if total != seeds {
				t.Errorf("total = %d, want %d", total, seeds)
			}
			calls = append(calls, done) // serialized by the campaign
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executions != seeds {
		t.Fatalf("executions = %d", rep.Executions)
	}
	if len(calls) != seeds {
		t.Fatalf("progress called %d times, want %d", len(calls), seeds)
	}
	for i, done := range calls {
		if done != i+1 {
			t.Fatalf("progress sequence %v not strictly increasing", calls)
		}
	}
}

// TestCampaignTelemetry: an enabled registry collects per-seed phases and
// aggregate counters; run with -race this also exercises concurrent
// reporting from the worker pool.
func TestCampaignTelemetry(t *testing.T) {
	reg := telemetry.Default()
	reg.Reset()
	reg.SetEnabled(true)
	defer func() {
		reg.SetEnabled(false)
		reg.Reset()
	}()
	const seeds = 16
	rep, err := RunWithOptions(Config{
		Workload: workload.LockedCounter(3, 3, 1),
		Model:    memmodel.WO,
		Seeds:    seeds,
		Workers:  4,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["campaign.executions"]; got != seeds {
		t.Errorf("campaign.executions = %d, want %d", got, seeds)
	}
	if got := snap.Counters["campaign.racy_executions"]; got != int64(rep.Racy) {
		t.Errorf("campaign.racy_executions = %d, want %d", got, rep.Racy)
	}
	if got := snap.Phases["campaign.seed"].Count; got != seeds {
		t.Errorf("campaign.seed phase count = %d, want %d", got, seeds)
	}
	if snap.Phases["campaign.run"].Count != 1 {
		t.Errorf("campaign.run phase count = %d, want 1", snap.Phases["campaign.run"].Count)
	}
	if snap.Counters["detect.analyses"] != seeds {
		t.Errorf("detect.analyses = %d, want %d", snap.Counters["detect.analyses"], seeds)
	}
}

func TestCampaignExampleSeedPrefersFirstPartition(t *testing.T) {
	rep, err := Run(Config{
		Workload: workload.RaceChain(3),
		Model:    memmodel.WO,
		Seeds:    20,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The stage-0 race is always in a first partition; its stats must say so.
	found := false
	for _, st := range rep.Races {
		if st.Race.Loc == 0 {
			found = true
			if st.FirstPartition != st.Occurrences {
				t.Fatalf("stage-0 race not always first: %+v", st)
			}
		} else if st.FirstPartition != 0 {
			t.Fatalf("later stage race marked first: %+v", st)
		}
	}
	if !found {
		t.Fatal("stage-0 race missing")
	}
}

// TestCampaignFlightSeedSummaries: with a flight recorder attached, the
// campaign emits exactly one seed summary per seed — aggregate counts
// for successes, the error for failures — and nothing else (no per-seed
// event/edge dumps).
func TestCampaignFlightSeedSummaries(t *testing.T) {
	realRun := simRun
	defer func() { simRun = realRun }()
	injected := errors.New("injected simulator fault")
	simRun = func(p *program.Program, cfg sim.Config) (*sim.Result, error) {
		if cfg.Seed == 3 {
			return nil, injected
		}
		return realRun(p, cfg)
	}

	const seeds = 12
	fr := export.NewRecorder()
	rep, err := RunWithOptions(Config{
		Workload: workload.RaceChain(2),
		Model:    memmodel.WO,
		Seeds:    seeds,
		Workers:  4,
	}, Options{Flight: fr})
	if err != nil {
		t.Fatal(err)
	}
	recs := fr.Records()
	bySeed := map[int64]*export.SeedRec{}
	for _, rec := range recs {
		if rec.Kind != export.KindSeed {
			t.Fatalf("campaign emitted a %q record; only seed summaries belong in a hunt log", rec.Kind)
		}
		if bySeed[rec.Seed.Seed] != nil {
			t.Fatalf("seed %d summarized twice", rec.Seed.Seed)
		}
		bySeed[rec.Seed.Seed] = rec.Seed
	}
	if len(bySeed) != seeds {
		t.Fatalf("%d seed summaries for %d seeds", len(bySeed), seeds)
	}
	racy := 0
	for seed := int64(0); seed < seeds; seed++ {
		s := bySeed[seed]
		if s == nil {
			t.Fatalf("seed %d missing from flight log", seed)
		}
		if seed == 3 {
			if !s.Failed || !strings.Contains(s.Error, "injected") {
				t.Fatalf("failed seed summary wrong: %+v", s)
			}
			continue
		}
		if s.Failed || s.Error != "" {
			t.Fatalf("healthy seed %d marked failed: %+v", seed, s)
		}
		if s.Events == 0 || s.DurNS <= 0 {
			t.Fatalf("seed %d summary lacks substance: %+v", seed, s)
		}
		if s.Racy {
			racy++
			if s.DataRaces == 0 || s.Partitions == 0 || s.FirstPartitions == 0 {
				t.Fatalf("racy seed %d summary inconsistent: %+v", seed, s)
			}
		}
	}
	if racy != rep.Racy {
		t.Errorf("flight log says %d racy seeds, report says %d", racy, rep.Racy)
	}
}

// TestCampaignProgressCoalescing pins the callback count under
// ProgressEvery: with N seeds and every=E the callback fires
// ceil-free — once per E completions plus the guaranteed final call.
func TestCampaignProgressCoalescing(t *testing.T) {
	const seeds = 24
	var calls []int
	_, err := RunWithOptions(Config{
		Workload: workload.LockedCounter(3, 3, 1),
		Model:    memmodel.WO,
		Seeds:    seeds,
		Workers:  8,
	}, Options{
		ProgressEvery: 10,
		Progress: func(done, total int) {
			calls = append(calls, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic cadence: fires at 10, 20, and the final 24 — no
	// more, no fewer, regardless of worker interleaving.
	want := []int{10, 20, 24}
	if !reflect.DeepEqual(calls, want) {
		t.Fatalf("coalesced progress calls = %v, want %v", calls, want)
	}
}

// TestCampaignProgressFinalAlwaysFires: even with a coalescing stride
// coarser than the campaign, the last completion reports done == total.
func TestCampaignProgressFinalAlwaysFires(t *testing.T) {
	const seeds = 7
	var calls []int
	_, err := RunWithOptions(Config{
		Workload: workload.LockedCounter(3, 3, 1),
		Model:    memmodel.WO,
		Seeds:    seeds,
		Workers:  4,
	}, Options{
		ProgressEvery: 1000,
		Progress:      func(done, total int) { calls = append(calls, done) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(calls, []int{seeds}) {
		t.Fatalf("calls = %v, want just the final %d", calls, seeds)
	}
}

// TestCampaignPublisherEvents: a subscribed publisher sees one race
// event per distinct static race (first occurrence) and progress
// reaching done == total with a consistent racy tally.
func TestCampaignPublisherEvents(t *testing.T) {
	pub := obs.NewPublisher()
	sub := pub.Subscribe()
	defer sub.Close()

	const seeds = 16
	rep, err := RunWithOptions(Config{
		Workload: workload.LockedCounter(3, 3, 1),
		Model:    memmodel.WO,
		Seeds:    seeds,
		Workers:  4,
	}, Options{Publisher: pub})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RaceFree() {
		t.Fatal("expected the buggy workload to race")
	}

	evs, dropped := sub.Poll()
	if dropped != 0 {
		t.Fatalf("dropped %d events with the default ring", dropped)
	}
	raceSeen := map[string]int{}
	var lastProgress *obs.Event
	for i := range evs {
		ev := evs[i]
		switch ev.Kind {
		case obs.EventRace:
			raceSeen[ev.Race]++
		case obs.EventProgress:
			lastProgress = &evs[i]
		}
	}
	if len(raceSeen) != len(rep.Races) {
		t.Fatalf("published %d distinct races, report has %d", len(raceSeen), len(rep.Races))
	}
	for race, n := range raceSeen {
		if n != 1 {
			t.Errorf("race %q published %d times, want once", race, n)
		}
	}
	if lastProgress == nil {
		t.Fatal("no progress events published")
	}
	if lastProgress.Done != seeds || lastProgress.Total != seeds {
		t.Fatalf("final progress = %d/%d, want %d/%d",
			lastProgress.Done, lastProgress.Total, seeds, seeds)
	}
	if lastProgress.Racy != rep.Racy || lastProgress.DistinctRaces != len(rep.Races) {
		t.Fatalf("final progress tallies %+v disagree with report (racy=%d distinct=%d)",
			lastProgress, rep.Racy, len(rep.Races))
	}
}

// TestCampaignLiveCounters: with the registry enabled, the live
// per-seed counters and gauges settle at the report's values.
func TestCampaignLiveCounters(t *testing.T) {
	reg := telemetry.Default()
	reg.Reset()
	reg.SetEnabled(true)
	defer func() {
		reg.SetEnabled(false)
		reg.Reset()
	}()
	const seeds = 12
	rep, err := RunWithOptions(Config{
		Workload: workload.LockedCounter(3, 3, 1),
		Model:    memmodel.WO,
		Seeds:    seeds,
		Workers:  4,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["campaign.seeds_done"]; got != seeds {
		t.Errorf("campaign.seeds_done = %d, want %d", got, seeds)
	}
	if got := snap.Gauges["campaign.seeds_total"]; got != seeds {
		t.Errorf("campaign.seeds_total = %d, want %d", got, seeds)
	}
	if got := snap.Counters["campaign.seeds_racy"]; got != int64(rep.Racy) {
		t.Errorf("campaign.seeds_racy = %d, want %d", got, rep.Racy)
	}
	if got := snap.Gauges["campaign.races_distinct"]; got != int64(len(rep.Races)) {
		t.Errorf("campaign.races_distinct = %d, want %d", got, len(rep.Races))
	}
	if got := snap.Counters["campaign.seeds_failed"]; got != 0 {
		t.Errorf("campaign.seeds_failed = %d, want 0", got)
	}
}

// A traced campaign must keep every racy seed's trace, retrievable
// under "seed-N", with the simulate and analyze spans recorded; clean
// seeds are sampled out.
func TestCampaignTracing(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.SetEnabled(true)
	tracer := telemetry.NewTracer(telemetry.TracerOptions{Registry: reg, MinSlowSamples: 1 << 30})
	rep, err := RunWithOptions(Config{
		Workload: workload.LockedCounter(3, 4, 1),
		Model:    memmodel.WO,
		Seeds:    40,
	}, Options{Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RaceFree() {
		t.Fatal("buggy campaign race-free")
	}
	// Each example seed is a known-racy execution; its trace must be
	// kept with the simulate and analyze spans in the timeline.
	for _, st := range rep.Races {
		key := fmt.Sprintf("seed-%d", st.ExampleSeed)
		ts, ok := tracer.Lookup(key)
		if !ok {
			t.Errorf("racy seed %d has no kept trace", st.ExampleSeed)
			continue
		}
		if !ts.Finished || !ts.Outcome.Racy {
			t.Errorf("seed %d outcome = %+v", st.ExampleSeed, ts.Outcome)
		}
		seen := map[string]bool{}
		for _, sp := range ts.Spans {
			seen[sp.Name] = true
		}
		if !seen["simulate"] || !seen["analyze"] {
			t.Errorf("seed %d trace missing phases: %v", st.ExampleSeed, seen)
		}
	}
	// With slow sampling disabled, exactly the racy executions stay kept.
	if kept := len(tracer.Keys()); kept != rep.Racy {
		t.Errorf("tracer keeps %d traces, want %d racy executions", kept, rep.Racy)
	}
	if got := reg.Counter("trace.streams_traced").Value(); got != 40 {
		t.Errorf("streams_traced = %d, want 40", got)
	}
}

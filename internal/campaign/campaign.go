// Package campaign drives the detector the way a user hunts bugs with it:
// run a program under many seeds on a weak model, analyze every execution
// post-mortem, and aggregate the races across executions — how often each
// static race occurred, how often it sat in a first partition, and which
// executions to replay for debugging.
//
// Dynamic detection "provide[s] precise information about a single
// execution [but] little information about other executions" (§1); a
// campaign is the standard mitigation — rerun under many schedules and
// union the evidence.
package campaign

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"weakrace/internal/core"
	"weakrace/internal/memmodel"
	"weakrace/internal/obs"
	"weakrace/internal/sim"
	"weakrace/internal/telemetry"
	"weakrace/internal/telemetry/export"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

// Config describes a campaign.
type Config struct {
	// Workload is the program under test.
	Workload *workload.Workload
	// Model is the memory model to run on. Default WO.
	Model memmodel.Model
	// Seeds is the number of executions. Default 100.
	Seeds int
	// RetireProb forwards to the simulator (0 = simulator default).
	RetireProb float64
	// Pairing forwards to the detector.
	Pairing memmodel.PairingPolicy
	// Workers bounds parallelism. Default GOMAXPROCS.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Seeds == 0 {
		c.Seeds = 100
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// RaceStat aggregates one static race across the campaign.
type RaceStat struct {
	// Race is the static identity.
	Race core.LowerLevelRace
	// Occurrences counts executions exhibiting the race.
	Occurrences int
	// FirstPartition counts executions where the race sat in a first
	// partition — the executions worth debugging first.
	FirstPartition int
	// ExampleSeed is a seed exhibiting the race (smallest; in a first
	// partition when possible), for replay.
	ExampleSeed int64
	exampleIsFP bool
}

// Report is the aggregated campaign outcome.
type Report struct {
	Config Config
	// Executions counts the seeds that ran and analyzed successfully
	// (Seeds - Failed). Aggregate statistics cover only these.
	Executions int
	// Racy counts executions with at least one data race.
	Racy int
	// Incomplete counts executions that hit MaxSteps (spin starvation).
	Incomplete int
	// Failed counts seeds whose simulation or analysis errored. A failed
	// seed is dropped from aggregation, not fatal: the campaign's value is
	// the union of evidence across schedules, and discarding ninety-nine
	// good executions over one bad seed inverts that.
	Failed int
	// FirstError describes the first (lowest-seed) failure, empty when
	// Failed == 0.
	FirstError string
	// Races lists the distinct static races, most frequent first.
	Races []RaceStat
}

// RaceFree reports whether no execution exhibited a data race.
func (r *Report) RaceFree() bool { return r.Racy == 0 }

// Options holds per-run hooks that are not part of the campaign's
// deterministic configuration.
type Options struct {
	// Progress, when set, is called as executions complete, with done
	// strictly increasing and ending exactly at total. Calls are
	// serialized but come from worker goroutines; keep the callback fast.
	// By default it fires after every execution; ProgressEvery and
	// ProgressInterval coalesce it.
	Progress func(done, total int)
	// ProgressEvery suppresses Progress until at least this many
	// executions completed since the last call (the final completion
	// always fires). 0 or 1 keeps the per-execution default.
	ProgressEvery int
	// ProgressInterval, when positive, also fires Progress when this
	// much time has passed since the last call — so a coarse
	// ProgressEvery still produces a heartbeat on slow workloads.
	ProgressInterval time.Duration
	// Publisher, when non-nil, receives live observability events: a
	// progress event per completion (the SSE layer coalesces bursts) and
	// a race event the first time each distinct static race is seen.
	// With no subscribers each publish costs one atomic load.
	Publisher *obs.Publisher
	// Flight, when non-nil, records one summary record per seed (duration,
	// race/partition counts, failure) into the flight recorder. The
	// campaign deliberately does NOT forward the recorder into each seed's
	// core.Analyze: a 500-seed hunt wants 500 summaries, not 500 full
	// event/edge dumps. Replay the interesting seed with a recorder
	// attached to get the full log.
	Flight *export.Recorder
	// Tracer, when non-nil, opens one trace per seed (key "seed-<n>",
	// simulate and analyze spans) and tail-samples the finished traces:
	// racy and failed seeds always keep theirs for /trace/{key}, the
	// rest survive only in the aggregate phase histograms.
	Tracer *telemetry.Tracer
	// Watchdog, when non-nil, receives each seed's total duration keyed
	// by "seed-<n>", so an SLO breach captures that seed's trace.
	Watchdog *obs.Watchdog
}

// Run executes the campaign, fanning executions across workers. The
// report is deterministic for a given Config regardless of Workers. It is
// RunWithOptions without hooks, kept for existing callers.
func Run(cfg Config) (*Report, error) {
	return RunWithOptions(cfg, Options{})
}

// simRun is sim.Run, indirected so tests can inject per-seed failures.
var simRun = sim.Run

// RunWithOptions executes the campaign with per-run hooks: progress
// callbacks fire as seeds complete, and (when the default telemetry
// registry is enabled) per-seed phase timings and aggregate counters are
// recorded.
func RunWithOptions(cfg Config, opts Options) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Workload == nil {
		return nil, fmt.Errorf("campaign: no workload")
	}
	reg := telemetry.Default()
	defer reg.StartSpan("campaign.run").End()
	start := time.Now()

	// Live observability. The counters let /status and /metrics show a
	// campaign mid-flight; the distinct-race set feeds first-occurrence
	// race events. All of it is skipped when nobody is watching: the
	// registry disabled and no Publisher means seedDone returns at once.
	telemetryOn := reg.Enabled()
	var (
		seedsDoneC, seedsFailedC, seedsRacyC *telemetry.Counter
		racesDistinctG                       *telemetry.Gauge
	)
	if telemetryOn {
		reg.Gauge("campaign.seeds_total").Set(int64(cfg.Seeds))
		seedsDoneC = reg.Counter("campaign.seeds_done")
		seedsFailedC = reg.Counter("campaign.seeds_failed")
		seedsRacyC = reg.Counter("campaign.seeds_racy")
		racesDistinctG = reg.Gauge("campaign.races_distinct")
	}

	type seedResult struct {
		racy       bool
		incomplete bool
		races      map[core.LowerLevelRace]bool // race -> in first partition
		firsts     map[core.LowerLevelRace]bool
	}
	results := make([]*seedResult, cfg.Seeds)
	errs := make([]error, cfg.Seeds)

	every := opts.ProgressEvery
	if every < 1 {
		every = 1
	}
	var (
		progressMu sync.Mutex
		doneCount  int
		lastFired  int
		lastFireAt = start
		liveFailed int
		liveRacy   int
		liveSeen   = map[core.LowerLevelRace]bool{}
	)
	observing := opts.Progress != nil || opts.Publisher != nil || telemetryOn
	seedDone := func(seed int, res *seedResult, err error) {
		if !observing {
			return
		}
		if telemetryOn {
			seedsDoneC.Inc()
			if err != nil {
				seedsFailedC.Inc()
			} else if res != nil && res.racy {
				seedsRacyC.Inc()
			}
		}
		// Everything below runs under the mutex so done values arrive
		// strictly increasing even with many workers.
		progressMu.Lock()
		defer progressMu.Unlock()
		doneCount++
		if err != nil {
			liveFailed++
		}
		if res != nil {
			if res.racy {
				liveRacy++
			}
			for race := range res.races {
				if liveSeen[race] {
					continue
				}
				liveSeen[race] = true
				if telemetryOn {
					racesDistinctG.Set(int64(len(liveSeen)))
				}
				opts.Publisher.Publish(obs.Event{
					Kind: obs.EventRace, Race: race.String(), Seed: int64(seed),
				})
			}
		}
		if opts.Progress != nil {
			fire := doneCount == cfg.Seeds || doneCount-lastFired >= every
			if !fire && opts.ProgressInterval > 0 {
				fire = time.Since(lastFireAt) >= opts.ProgressInterval
			}
			if fire {
				lastFired = doneCount
				lastFireAt = time.Now()
				opts.Progress(doneCount, cfg.Seeds)
			}
		}
		opts.Publisher.Publish(obs.Event{
			Kind: obs.EventProgress, Done: doneCount, Total: cfg.Seeds,
			Failed: liveFailed, Racy: liveRacy, DistinctRaces: len(liveSeen),
		})
	}

	// One scratch set per in-flight worker: the detector arena's
	// megabyte-scale buffers (race records, SCC stacks, partner lists) AND
	// the trace builder's event/word slabs are reused across the seeds a
	// worker analyzes instead of reallocated per seed. The trace arena's
	// slabs are retained by the trace the analysis holds, so a set goes
	// back to the pool only when its seed's closure — the analysis's whole
	// lifetime — exits.
	type seedScratch struct {
		core  *core.Arena
		trace *trace.Arena
	}
	scratches := sync.Pool{New: func() any {
		return &seedScratch{core: core.NewArena(), trace: trace.NewArena()}
	}}

	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for seed := 0; seed < cfg.Seeds; seed++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(seed int) {
			defer wg.Done()
			defer func() { <-sem }()
			// Deferred closure: results[seed]/errs[seed] are in place by
			// the time the worker returns, whichever path it took.
			defer func() { seedDone(seed, results[seed], errs[seed]) }()
			sp := reg.StartSpan("campaign.seed")
			defer sp.End()
			// Per-seed trace: simulate and analyze spans under one key, so
			// racehunt serves /trace/seed-N for every racy or failed seed.
			var str *telemetry.StreamTrace
			if opts.Tracer != nil {
				key := fmt.Sprintf("seed-%d", seed)
				id := telemetry.TraceID(uint64(start.UnixNano())<<16 | uint64(seed)&0xffff)
				str = opts.Tracer.Begin(key, id, 0, cfg.Workload.Name, cfg.Model.String(), int64(seed))
				seedStart := time.Now()
				defer func() {
					dur := time.Since(seedStart)
					res := results[seed]
					opts.Tracer.Finish(str, telemetry.TraceOutcome{
						Racy:    res != nil && res.racy,
						Errored: errs[seed] != nil,
					})
					opts.Watchdog.Observe("campaign.seed", dur, key)
				}()
			}
			// The seed summary is timed and emitted only when a recorder is
			// attached; the default path costs one nil check.
			var seedStart time.Time
			if opts.Flight != nil {
				seedStart = time.Now()
			}
			emitSeed := func(a *core.Analysis, incomplete bool, err error) {
				if opts.Flight == nil {
					return
				}
				rec := &export.SeedRec{
					Seed:       int64(seed),
					DurNS:      int64(time.Since(seedStart)),
					Incomplete: incomplete,
				}
				if err != nil {
					rec.Failed, rec.Error = true, err.Error()
				} else {
					rec.Events = a.NumEvents
					rec.Races = len(a.Races)
					rec.DataRaces = len(a.DataRaces)
					rec.Partitions = len(a.Partitions)
					rec.FirstPartitions = len(a.FirstPartitions)
					rec.Racy = !a.RaceFree()
				}
				opts.Flight.Emit(export.Record{Kind: export.KindSeed, Seed: rec})
			}
			simStart := time.Now()
			r, err := simRun(cfg.Workload.Prog, sim.Config{
				Model: cfg.Model, Seed: int64(seed),
				RetireProb: cfg.RetireProb,
				InitMemory: cfg.Workload.InitMemory,
			})
			str.Record("simulate", -1, simStart, time.Since(simStart))
			if err != nil {
				errs[seed] = err
				emitSeed(nil, false, err)
				return
			}
			res := &seedResult{
				incomplete: !r.Completed,
				races:      map[core.LowerLevelRace]bool{},
				firsts:     map[core.LowerLevelRace]bool{},
			}
			// Workers: 1 — the campaign already saturates the machine across
			// seeds; nesting the per-location race-search pool inside the
			// seed pool would only oversubscribe it.
			scratch := scratches.Get().(*seedScratch)
			defer scratches.Put(scratch)
			anStart := time.Now()
			a, err := core.Analyze(trace.FromExecutionInto(r.Exec, scratch.trace),
				core.Options{Pairing: cfg.Pairing, Workers: 1, Arena: scratch.core})
			str.Record("analyze", -1, anStart, time.Since(anStart))
			if err != nil {
				errs[seed] = err
				emitSeed(nil, res.incomplete, err)
				return
			}
			emitSeed(a, res.incomplete, nil)
			res.racy = !a.RaceFree()
			for _, ri := range a.DataRaces {
				pi := a.RaceOfPartition(ri)
				isFirst := pi >= 0 && a.Partitions[pi].First
				for _, ll := range a.LowerLevel(a.Races[ri]) {
					key := ll.Canonical()
					res.races[key] = true
					if isFirst {
						res.firsts[key] = true
					}
				}
			}
			results[seed] = res
		}(seed)
	}
	wg.Wait()

	// A failed seed is recorded, not fatal: keep every successful
	// execution's evidence and surface the first failure in the report.
	// Only a campaign in which *every* seed failed returns an error.
	rep := &Report{Config: cfg}
	for seed, err := range errs {
		if err != nil {
			rep.Failed++
			if rep.FirstError == "" {
				rep.FirstError = fmt.Sprintf("seed %d: %v", seed, err)
			}
		}
	}
	rep.Executions = cfg.Seeds - rep.Failed
	if rep.Failed == cfg.Seeds {
		return nil, fmt.Errorf("campaign: all %d seeds failed: %s", cfg.Seeds, rep.FirstError)
	}

	agg := map[core.LowerLevelRace]*RaceStat{}
	for seed, res := range results {
		if res == nil {
			continue // failed seed
		}
		if res.incomplete {
			rep.Incomplete++
		}
		if res.racy {
			rep.Racy++
		}
		for race := range res.races {
			st := agg[race]
			if st == nil {
				st = &RaceStat{Race: race, ExampleSeed: int64(seed), exampleIsFP: res.firsts[race]}
				agg[race] = st
			}
			st.Occurrences++
			if res.firsts[race] {
				st.FirstPartition++
				if !st.exampleIsFP {
					st.ExampleSeed = int64(seed)
					st.exampleIsFP = true
				}
			}
		}
	}
	for _, st := range agg {
		rep.Races = append(rep.Races, *st)
	}
	sort.Slice(rep.Races, func(i, j int) bool {
		a, b := rep.Races[i], rep.Races[j]
		if a.Occurrences != b.Occurrences {
			return a.Occurrences > b.Occurrences
		}
		return a.Race.String() < b.Race.String()
	})
	if reg.Enabled() {
		reg.Counter("campaign.runs").Inc()
		reg.Counter("campaign.executions").Add(int64(rep.Executions))
		reg.Counter("campaign.racy_executions").Add(int64(rep.Racy))
		reg.Counter("campaign.incomplete_executions").Add(int64(rep.Incomplete))
		reg.Counter("campaign.failed_executions").Add(int64(rep.Failed))
		reg.Counter("campaign.distinct_races").Add(int64(len(rep.Races)))
		var occurrences int64
		for _, st := range rep.Races {
			occurrences += int64(st.Occurrences)
		}
		reg.Counter("campaign.race_occurrences").Add(occurrences)
		if elapsed := time.Since(start).Seconds(); elapsed > 0 {
			reg.Gauge("campaign.races_per_sec").Set(int64(float64(occurrences) / elapsed))
			reg.Gauge("campaign.execs_per_sec").Set(int64(float64(rep.Executions) / elapsed))
		}
	}
	return rep, nil
}

// Render writes the campaign report. The header carries the aggregate
// distinct-race count and the failed-seed ratio so a long report is
// skimmable from its first line.
func (r *Report) Render(w io.Writer) error {
	seeds := r.Executions + r.Failed
	_, err := fmt.Fprintf(w, "campaign: %s on %s, %d executions (%d racy, %d incomplete), %d distinct races, %d/%d seeds failed\n",
		r.Config.Workload.Name, r.Config.Model, r.Executions, r.Racy, r.Incomplete,
		len(r.Races), r.Failed, seeds)
	if err != nil {
		return err
	}
	if r.Failed > 0 {
		if _, err := fmt.Fprintf(w, "%d seeds failed (first: %s)\n", r.Failed, r.FirstError); err != nil {
			return err
		}
	}
	if r.RaceFree() {
		_, err := fmt.Fprintf(w, "no data races in any execution: every run was sequentially consistent (Condition 3.4).\n")
		return err
	}
	if _, err := fmt.Fprintf(w, "%-45s %6s %10s %8s\n", "race", "seen", "first-part", "replay"); err != nil {
		return err
	}
	for _, st := range r.Races {
		if _, err := fmt.Fprintf(w, "%-45s %6d %10d %8d\n",
			st.Race, st.Occurrences, st.FirstPartition, st.ExampleSeed); err != nil {
			return err
		}
	}
	return nil
}

// Package weakrace is a from-scratch reproduction of Adve, Hill, Miller &
// Netzer, "Detecting Data Races on Weak Memory Systems" (ISCA 1991): a
// post-mortem dynamic data race detector that remains sound on weak memory
// systems (WO, RCsc, DRF0, DRF1), together with the multiprocessor
// simulator, tracing substrate, sequential-consistency machinery, and
// on-the-fly baseline needed to exercise and evaluate it.
//
// The end-to-end pipeline:
//
//	w := weakrace.Figure2()                          // or build your own program
//	res, _ := weakrace.Simulate(w.Prog, weakrace.SimConfig{
//		Model: weakrace.WO, Seed: 42, InitMemory: w.InitMemory,
//	})
//	tr := weakrace.TraceExecution(res.Exec)          // instrumentation (§4.1)
//	a, _ := weakrace.Detect(tr, weakrace.DetectOptions{})
//	weakrace.WriteReport(os.Stdout, a)               // first partitions (§4.2)
//
// If a.RaceFree() the execution was sequentially consistent (Condition
// 3.4(1)); otherwise each reported first partition contains at least one
// data race that occurs in a sequentially consistent execution of the
// program (Theorem 4.2), so it can be debugged with sequential-consistency
// intuition.
package weakrace

import (
	"io"

	"weakrace/internal/campaign"
	"weakrace/internal/core"
	"weakrace/internal/litmus"
	"weakrace/internal/lockset"
	"weakrace/internal/memmodel"
	"weakrace/internal/onthefly"
	"weakrace/internal/program"
	"weakrace/internal/provenance"
	"weakrace/internal/report"
	"weakrace/internal/scp"
	"weakrace/internal/sim"
	"weakrace/internal/telemetry/export"
	"weakrace/internal/trace"
	"weakrace/internal/workload"
)

// Memory consistency models (paper §2.2).
const (
	// SC is sequential consistency.
	SC = memmodel.SC
	// WO is weak ordering.
	WO = memmodel.WO
	// RCsc is release consistency with sequentially consistent
	// synchronization.
	RCsc = memmodel.RCsc
	// DRF0 is data-race-free-0 (canonical implementation).
	DRF0 = memmodel.DRF0
	// DRF1 is data-race-free-1 (canonical implementation).
	DRF1 = memmodel.DRF1
)

// Model identifies a memory consistency model.
type Model = memmodel.Model

// AllModels lists every model in the order the paper introduces them.
var AllModels = memmodel.All

// ParseModel converts a model name ("SC", "WO", "RCsc", "DRF0", "DRF1").
func ParseModel(s string) (Model, error) { return memmodel.Parse(s) }

// Pairing policies for constructing so1 (Definition 2.1/2.2).
const (
	// ConservativePairing is the paper's classification: a Test&Set's
	// write never acts as a release. The default.
	ConservativePairing = memmodel.ConservativePairing
	// LiberalPairing lets a Test&Set's write pair with acquires — sound
	// on WO/DRF0-style hardware, where every synchronization operation
	// drains the store buffer.
	LiberalPairing = memmodel.LiberalPairing
)

// PairingPolicy selects which synchronization writes pair with acquires.
type PairingPolicy = memmodel.PairingPolicy

// Program building (see NewProgram and the Builder methods).
type (
	// Program is an immutable multi-threaded register-machine program.
	Program = program.Program
	// Builder assembles a Program thread by thread.
	Builder = program.Builder
	// ThreadBuilder accumulates one thread's instructions.
	ThreadBuilder = program.ThreadBuilder
	// Addr identifies a shared memory location.
	Addr = program.Addr
	// Reg identifies a per-thread register.
	Reg = program.Reg
	// AddrExpr is an address operand (At or AtReg).
	AddrExpr = program.AddrExpr
	// ValExpr is a value operand (Imm or FromReg).
	ValExpr = program.ValExpr
)

// NewProgram starts building a program with the given shared-location and
// register-file sizes.
func NewProgram(name string, numLocations, numRegs int) *Builder {
	return program.NewBuilder(name, numLocations, numRegs)
}

// At addresses a fixed shared location.
func At(a Addr) AddrExpr { return program.At(a) }

// AtReg addresses the location (register value + offset).
func AtReg(r Reg, offset Addr) AddrExpr { return program.AtReg(r, offset) }

// Imm is an immediate value operand.
func Imm(v int64) ValExpr { return program.Imm(v) }

// FromReg is a register value operand.
func FromReg(r Reg) ValExpr { return program.FromReg(r) }

// Assemble parses weakrace assembly (see internal/program's syntax doc)
// into a program plus its init-memory directives.
func Assemble(r io.Reader) (*Program, map[Addr]int64, error) { return program.Assemble(r) }

// AssembleString is Assemble over a string.
func AssembleString(src string) (*Program, map[Addr]int64, error) {
	return program.AssembleString(src)
}

// Simulation.
type (
	// SimConfig configures a simulation run (model, seed, buffers).
	SimConfig = sim.Config
	// SimResult is a completed run: execution record and final memory.
	SimResult = sim.Result
	// Execution is the full value-annotated record of a run.
	Execution = sim.Execution
	// MemOp is one dynamic memory operation.
	MemOp = sim.MemOp
	// StaticOp identifies an operation by program point and location.
	StaticOp = sim.StaticOp
)

// Simulate executes the program on the configured memory model. Runs are
// deterministic in (program, config).
func Simulate(p *Program, cfg SimConfig) (*SimResult, error) { return sim.Run(p, cfg) }

// Decision is one scripted scheduler step (see SimConfig.Script).
type Decision = sim.Decision

// ExecStep returns a scripted decision executing one instruction on cpu.
func ExecStep(cpu int) Decision { return sim.Exec(cpu) }

// RetireStep returns a scripted decision retiring cpu's oldest buffered
// write to loc.
func RetireStep(cpu int, loc Addr) Decision { return sim.Retire(cpu, loc) }

// Tracing (the paper's instrumentation, §4.1).
type (
	// Trace is a post-mortem trace: per-processor event streams.
	Trace = trace.Trace
	// Event is a synchronization or computation event.
	Event = trace.Event
	// EventRef names an event by processor and position.
	EventRef = trace.EventRef
)

// TraceExecution instruments an execution into a trace: computation events
// with READ/WRITE sets, synchronization events with pairing.
func TraceExecution(e *Execution) *Trace { return trace.FromExecution(e) }

// WriteTraceFile encodes a trace to a binary file.
func WriteTraceFile(path string, t *Trace) error { return trace.WriteFile(path, t) }

// ReadTraceFile decodes a binary trace file.
func ReadTraceFile(path string) (*Trace, error) { return trace.ReadFile(path) }

// EncodeTrace writes a trace in binary form.
func EncodeTrace(w io.Writer, t *Trace) error { return trace.Encode(w, t) }

// DecodeTrace reads a binary trace.
func DecodeTrace(r io.Reader) (*Trace, error) { return trace.Decode(r) }

// DumpTrace writes a human-readable rendering of a trace.
func DumpTrace(w io.Writer, t *Trace) error { return trace.Dump(w, t) }

// EncodeTraceText writes a trace in the line-oriented, hand-editable text
// format.
func EncodeTraceText(w io.Writer, t *Trace) error { return trace.EncodeText(w, t) }

// DecodeTraceText parses a text-format trace.
func DecodeTraceText(r io.Reader) (*Trace, error) { return trace.DecodeText(r) }

// WriteTraceFileSet writes the trace as per-processor files plus a
// manifest under dir — the paper's "trace files" layout.
func WriteTraceFileSet(dir string, t *Trace) error { return trace.WriteFileSet(dir, t) }

// ReadTraceFileSet reassembles a trace written by WriteTraceFileSet.
func ReadTraceFileSet(dir string) (*Trace, error) { return trace.ReadFileSet(dir) }

// Detection (the paper's contribution, §4).
type (
	// Analysis is the full result of post-mortem detection.
	Analysis = core.Analysis
	// DetectOptions configures detection (pairing policy).
	DetectOptions = core.Options
	// Race is a higher-level race between two events.
	Race = core.Race
	// Partition is a set of data races sharing an SCC of the augmented
	// graph; first partitions are the report.
	Partition = core.Partition
	// LowerLevelRace is an operation-granularity race with static
	// provenance.
	LowerLevelRace = core.LowerLevelRace
	// EventID indexes events in an Analysis.
	EventID = core.EventID
)

// Detect runs the post-mortem pipeline: happens-before-1 graph, race
// detection, augmented graph, partitions, first partitions.
func Detect(t *Trace, opts DetectOptions) (*Analysis, error) { return core.Analyze(t, opts) }

// WriteReport renders the programmer-facing race report.
func WriteReport(w io.Writer, a *Analysis) error { return report.RenderAnalysis(w, a) }

// WriteGraph renders a Figure-3-style view of the augmented
// happens-before-1 graph.
func WriteGraph(w io.Writer, a *Analysis) error { return report.RenderGraph(w, a) }

// WriteDOT renders the augmented happens-before-1 graph in Graphviz DOT
// form (first-partition events highlighted, races as red double edges).
func WriteDOT(w io.Writer, a *Analysis) error { return report.RenderDOT(w, a) }

// Provenance: flight recording and per-race witness explanations.
type (
	// FlightRecorder is the structured event log of the detection stack;
	// attach one via DetectOptions.Flight, then export it with
	// WriteDir/WriteJSONL/WriteChromeTrace.
	FlightRecorder = export.Recorder
	// Explainer answers witness queries against one analysis.
	Explainer = provenance.Explainer
	// Witness is the full explanation of one reported race: conflicting
	// accesses, hb1-unorderedness certificate, partition verdict, and the
	// affected-by chain for non-first partitions.
	Witness = provenance.Witness
)

// NewFlightRecorder returns an empty flight recorder.
func NewFlightRecorder() *FlightRecorder { return export.NewRecorder() }

// NewExplainer prepares a witness engine for the analysis.
func NewExplainer(a *Analysis) *Explainer { return provenance.NewExplainer(a) }

// WriteExplanations renders the per-race witness explanations as text.
func WriteExplanations(w io.Writer, e *Explainer) error { return report.RenderExplanations(w, e) }

// WriteHTMLReport renders the single-file HTML race report: verdict,
// partition DAG (first partitions highlighted), and per-race witness
// drill-downs.
func WriteHTMLReport(w io.Writer, e *Explainer) error { return report.RenderHTML(w, e) }

// WritePartitionDOT renders the condensation of the augmented graph in
// Graphviz DOT form: partitions as nodes (first ones highlighted, race
// edge counts in labels) connected by immediate precedence edges.
func WritePartitionDOT(w io.Writer, e *Explainer) error { return report.RenderPartitionDOT(w, e) }

// Sequential-consistency machinery (Condition 3.4, §3).
type (
	// GroundTruth is a set of data races known to occur under SC.
	GroundTruth = scp.GroundTruth
	// RaceSet is a set of lower-level races by static identity.
	RaceSet = scp.RaceSet
	// EnumLimits bounds exhaustive SC enumeration.
	EnumLimits = scp.EnumLimits
	// Condition34Report validates the paper's guarantees on one run.
	Condition34Report = scp.Condition34Report
)

// VerifySC decides (within budget) whether an execution is sequentially
// consistent. Exact but worst-case exponential.
func VerifySC(e *Execution, budget int) (sc, decided bool) { return scp.VerifySC(e, budget) }

// SCBoundary returns the length of the longest sequentially consistent
// prefix of the execution — the paper's "End of SCP" marker (Figure 2b).
func SCBoundary(e *Execution, budget int) (n int, decided bool) { return scp.SCBoundary(e, budget) }

// EnumerateSC exhaustively enumerates SC executions of a program and
// collects every data race they exhibit (ground truth for Theorem 4.2).
func EnumerateSC(p *Program, initMemory map[Addr]int64, lim EnumLimits) (*GroundTruth, error) {
	return scp.EnumerateSC(p, initMemory, lim)
}

// SampleSC collects SC data races from numSeeds random schedules — the
// scalable, sound-but-incomplete alternative to EnumerateSC.
func SampleSC(p *Program, initMemory map[Addr]int64, numSeeds int) (*GroundTruth, error) {
	return scp.SampleSC(p, initMemory, numSeeds)
}

// CheckCondition34 validates Condition 3.4's guarantees for one analyzed
// execution against an SC ground truth.
func CheckCondition34(a *Analysis, e *Execution, gt *GroundTruth, scBudget int) *Condition34Report {
	return scp.CheckCondition34(a, e, gt, scBudget)
}

// On-the-fly baseline (§5).
type (
	// OnTheFlyOptions configures the vector-clock baseline detector.
	OnTheFlyOptions = onthefly.Options
	// OnTheFlyResult is its output and cost counters.
	OnTheFlyResult = onthefly.Result
)

// DetectOnTheFly runs the bounded-history vector-clock baseline over an
// execution's operations in issue order.
func DetectOnTheFly(e *Execution, opts OnTheFlyOptions) *OnTheFlyResult {
	return onthefly.Detect(e, opts)
}

// FirstRaceResult is the output of the online first-race classification.
type FirstRaceResult = onthefly.FirstRaceResult

// DetectFirstRacesOnTheFly runs the online first-race classification —
// the paper's §6 future work: races downstream of an earlier race (by the
// affects relation, approximated with taint epochs) are separated from
// the first races.
func DetectFirstRacesOnTheFly(e *Execution, opts OnTheFlyOptions) *FirstRaceResult {
	return onthefly.DetectFirstRaces(e, opts)
}

// Workloads.
type (
	// Workload bundles a program with its initial memory.
	Workload = workload.Workload
	// RandomParams tunes the random program generator.
	RandomParams = workload.RandomParams
)

// Figure1a is the paper's Figure 1a: unsynchronized message passing.
func Figure1a() *Workload { return workload.Figure1a() }

// Figure1b is the paper's Figure 1b: Unset/Test&Set-ordered message
// passing; data-race-free.
func Figure1b() *Workload { return workload.Figure1b() }

// Figure2 is the paper's Figure 2 work-queue fragment with the missing
// Test&Set bug.
func Figure2() *Workload { return workload.Figure2() }

// LockedCounter is a shared counter under a Test&Set/Unset lock; buggyCPU
// (if in range) skips the lock once.
func LockedCounter(cpus, iters, buggyCPU int) *Workload {
	return workload.LockedCounter(cpus, iters, buggyCPU)
}

// ProducerConsumer is a flag-synchronized pipeline; synced=false races.
func ProducerConsumer(items int, synced bool) *Workload {
	return workload.ProducerConsumer(items, synced)
}

// BarrierPhases is a two-phase computation behind a flag barrier.
func BarrierPhases(workers int) *Workload { return workload.BarrierPhases(workers) }

// WriteBurst interleaves private write bursts with locked counter updates;
// race-free, and the workload that separates the WO/DRF0 and RCsc/DRF1
// drain rules.
func WriteBurst(cpus, burst, iters int) *Workload {
	return workload.WriteBurst(cpus, burst, iters)
}

// RaceChain is a chain of dependent races: only stage 0 forms a first
// partition.
func RaceChain(stages int) *Workload { return workload.RaceChain(stages) }

// Dekker is Dekker-style mutual exclusion through data operations:
// correct under SC, racy by construction, and broken on weak models.
func Dekker(iters int) *Workload { return workload.Dekker(iters) }

// DekkerFenced is Dekker with fences: mutually exclusive on every model,
// yet still racy — fences fix this hardware but are not recognized
// synchronization, so no DRF guarantee applies.
func DekkerFenced(iters int) *Workload { return workload.DekkerFenced(iters) }

// TasPublish publishes a payload through a Test&Set's write half —
// reported racy under ConservativePairing, race-free under
// LiberalPairing.
func TasPublish(payloadCells int) *Workload { return workload.TasPublish(payloadCells) }

// FlagHandoff transfers buffer ownership through a release/acquire flag —
// race-free under happens-before, the canonical lockset false positive.
func FlagHandoff(cells int) *Workload { return workload.FlagHandoff(cells) }

// RandomWorkload generates a program of lock-protected segments;
// UnlockedFraction > 0 injects data races.
func RandomWorkload(p RandomParams) *Workload { return workload.Random(p) }

// Fig2StaleScript returns scheduler decisions that deterministically
// construct the Figure 2b anomaly on a weak model.
func Fig2StaleScript() []Decision { return workload.Fig2StaleScript() }

// RunFig2Stale deterministically reproduces the Figure 2b anomaly.
func RunFig2Stale(model Model, seed int64) (*SimResult, error) {
	return workload.RunFig2Stale(model, seed)
}

// Litmus testing.
type (
	// LitmusTest is one litmus test from the catalog.
	LitmusTest = litmus.Test
	// LitmusResult aggregates a test's outcomes on one model.
	LitmusResult = litmus.Result
)

// LitmusCatalog returns the built-in litmus tests (SB, MP, LB, CoRR,
// CoWW, IRIW, Test&Set atomicity, ...).
func LitmusCatalog() []*LitmusTest { return litmus.Catalog() }

// Lockset baseline (Eraser-style discipline checking).
type (
	// LocksetResult is the lockset checker's output.
	LocksetResult = lockset.Result
	// LocksetFinding is one location flagged by the lockset checker.
	LocksetFinding = lockset.Finding
)

// CheckLockset runs the Eraser-style lockset discipline over an
// execution: schedule-insensitive missing-lock detection, at the price of
// false positives on lock-free synchronization (see experiment T9).
func CheckLockset(e *Execution) *LocksetResult { return lockset.Check(e) }

// Campaigns: many-seed race hunting.
type (
	// CampaignConfig describes a multi-seed detection campaign.
	CampaignConfig = campaign.Config
	// CampaignReport aggregates races across a campaign's executions.
	CampaignReport = campaign.Report
	// RaceStat is one static race's campaign statistics.
	RaceStat = campaign.RaceStat
)

// RunCampaign executes a detection campaign: Seeds executions of the
// workload on the model, analyzed in parallel, with races aggregated by
// static identity. The report is deterministic for a given config.
func RunCampaign(cfg CampaignConfig) (*CampaignReport, error) { return campaign.Run(cfg) }

// RunLitmus executes one litmus test on one model across seeds.
func RunLitmus(t *LitmusTest, model Model, seeds int) (*LitmusResult, error) {
	return litmus.Run(t, model, seeds)
}

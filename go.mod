module weakrace

go 1.22

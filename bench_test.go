// Benchmark harness: one benchmark family per timed experiment table
// (T1–T7 of DESIGN.md §4; T8/T9 are pure accuracy comparisons printed by
// cmd/experiments). Each family measures the code path the corresponding
// table quantifies and reports the table's headline number as a custom
// metric, so `go test -bench=. -benchmem` regenerates every table's
// series. The cmd/experiments binary prints the full tables.
package weakrace_test

import (
	"fmt"
	"io"
	"testing"

	"weakrace"
)

// T1 — weak-model performance: simulate the write-burst workload on every
// model; the cycles/op metric is the table's series (SC highest,
// WO/DRF0 lower, RCsc/DRF1 lowest).
func BenchmarkT1ModelThroughput(b *testing.B) {
	w := weakrace.WriteBurst(4, 12, 4)
	for _, model := range weakrace.AllModels {
		b.Run(model.String(), func(b *testing.B) {
			var cycles, ops int64
			for i := 0; i < b.N; i++ {
				res, err := weakrace.Simulate(w.Prog, weakrace.SimConfig{
					Model: model, Seed: int64(i), RetireProb: 0.5,
					InitMemory: w.InitMemory,
				})
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Makespan()
				ops += int64(res.Exec.NumOps())
			}
			b.ReportMetric(float64(cycles)/float64(ops), "cycles/op")
		})
	}
}

// T2 — tracing overhead: simulation alone vs simulation plus trace
// construction and encoding.
func BenchmarkT2TracingOverhead(b *testing.B) {
	w := weakrace.LockedCounter(4, 8, -1)
	cfg := weakrace.SimConfig{Model: weakrace.WO, Seed: 1}
	b.Run("simulate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := weakrace.Simulate(w.Prog, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("simulate+trace+encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := weakrace.Simulate(w.Prog, cfg)
			if err != nil {
				b.Fatal(err)
			}
			tr := weakrace.TraceExecution(res.Exec)
			if err := weakrace.EncodeTrace(io.Discard, tr); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// T3 — post-mortem analysis cost as the trace grows.
func BenchmarkT3PostMortemScaling(b *testing.B) {
	for _, segments := range []int{4, 8, 16, 32, 64} {
		w := weakrace.RandomWorkload(weakrace.RandomParams{
			Seed: 5, CPUs: 4, Segments: segments, UnlockedFraction: 0.3,
		})
		res, err := weakrace.Simulate(w.Prog, weakrace.SimConfig{Model: weakrace.WO, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		tr := weakrace.TraceExecution(res.Exec)
		b.Run(fmt.Sprintf("segments-%d", segments), func(b *testing.B) {
			events := 0
			for i := 0; i < b.N; i++ {
				a, err := weakrace.Detect(tr, weakrace.DetectOptions{SkipValidate: true})
				if err != nil {
					b.Fatal(err)
				}
				events = a.NumEvents
			}
			b.ReportMetric(float64(events), "events")
		})
	}
}

// T3 (large) — the 10k–40k-event regime the PR-8 parallel passes target:
// analysis cost at segments 256/512/1024, plus a worker sweep on the
// segments-512 trace. Sub-benchmark names carry the worker count so
// `-bench T3PostMortemLarge` prints the speedup series directly.
func BenchmarkT3PostMortemLarge(b *testing.B) {
	traces := map[int]*weakrace.Trace{}
	for _, segments := range []int{256, 512, 1024} {
		w := weakrace.RandomWorkload(weakrace.RandomParams{
			Seed: 5, CPUs: 4, Segments: segments, UnlockedFraction: 0.3,
		})
		res, err := weakrace.Simulate(w.Prog, weakrace.SimConfig{Model: weakrace.WO, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		traces[segments] = weakrace.TraceExecution(res.Exec)
	}
	for _, segments := range []int{256, 512, 1024} {
		b.Run(fmt.Sprintf("segments-%d", segments), func(b *testing.B) {
			events := 0
			for i := 0; i < b.N; i++ {
				a, err := weakrace.Detect(traces[segments], weakrace.DetectOptions{SkipValidate: true})
				if err != nil {
					b.Fatal(err)
				}
				events = a.NumEvents
			}
			b.ReportMetric(float64(events), "events")
		})
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("segments-512-workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := weakrace.Detect(traces[512], weakrace.DetectOptions{
					SkipValidate: true, Workers: workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// T4 — accuracy: the full first-partition pipeline on racy workloads; the
// metrics contrast naive all-races reporting with first-partition
// reporting.
func BenchmarkT4AccuracyFirstPartitions(b *testing.B) {
	for _, w := range []*weakrace.Workload{
		weakrace.RaceChain(4),
		weakrace.LockedCounter(3, 4, 1),
	} {
		b.Run(w.Prog.Name, func(b *testing.B) {
			var naive, first float64
			n := 0
			for i := 0; i < b.N; i++ {
				res, err := weakrace.Simulate(w.Prog, weakrace.SimConfig{
					Model: weakrace.WO, Seed: int64(i), InitMemory: w.InitMemory,
				})
				if err != nil {
					b.Fatal(err)
				}
				a, err := weakrace.Detect(weakrace.TraceExecution(res.Exec), weakrace.DetectOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if a.RaceFree() {
					continue
				}
				n++
				naive += float64(len(a.DataRaces))
				for _, pi := range a.FirstPartitions {
					first += float64(len(a.Partitions[pi].Races))
				}
			}
			if n > 0 {
				b.ReportMetric(naive/float64(n), "naive-races")
				b.ReportMetric(first/float64(n), "first-part-races")
			}
		})
	}
}

// T5 — on-the-fly detection across history bounds; the races metric drops
// as the bound shrinks while comparisons (run-time cost) also drop.
func BenchmarkT5OnTheFly(b *testing.B) {
	w := weakrace.LockedCounter(3, 4, 1)
	res, err := weakrace.Simulate(w.Prog, weakrace.SimConfig{Model: weakrace.WO, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, limit := range []int{0, 4, 2, 1} {
		name := "unbounded"
		if limit > 0 {
			name = fmt.Sprintf("history-%d", limit)
		}
		b.Run(name, func(b *testing.B) {
			var races, comparisons int
			for i := 0; i < b.N; i++ {
				r := weakrace.DetectOnTheFly(res.Exec, weakrace.OnTheFlyOptions{HistoryLimit: limit})
				races = r.RaceCount()
				comparisons = r.Comparisons
			}
			b.ReportMetric(float64(races), "races")
			b.ReportMetric(float64(comparisons), "comparisons")
		})
	}
}

// T6 — the Condition 3.4 machinery: the exact SC verifier on honest and
// pathological executions of a race-free workload.
func BenchmarkT6VerifySC(b *testing.B) {
	w := weakrace.LockedCounter(3, 3, -1)
	for _, patho := range []bool{false, true} {
		name := "honest"
		if patho {
			name = "pathological"
		}
		res, err := weakrace.Simulate(w.Prog, weakrace.SimConfig{
			Model: weakrace.WO, Seed: 3,
			Pathological: patho, PathologicalProb: 0.2,
			InitMemory: w.InitMemory,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			sc := 0
			for i := 0; i < b.N; i++ {
				ok, decided := weakrace.VerifySC(res.Exec, 1<<19)
				if !decided {
					b.Fatal("verifier budget exhausted")
				}
				if ok {
					sc = 1
				}
			}
			b.ReportMetric(float64(sc), "is-sc")
		})
	}
}

// T7 — the §6 future-work extension: online first-race classification.
func BenchmarkT7FirstRacesOnline(b *testing.B) {
	w := weakrace.RaceChain(4)
	res, err := weakrace.Simulate(w.Prog, weakrace.SimConfig{Model: weakrace.WO, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	var first, downstream int
	for i := 0; i < b.N; i++ {
		r := weakrace.DetectFirstRacesOnTheFly(res.Exec, weakrace.OnTheFlyOptions{})
		first, downstream = len(r.First), len(r.Downstream)
	}
	b.ReportMetric(float64(first), "first-races")
	b.ReportMetric(float64(downstream), "downstream-races")
}

// End-to-end pipeline benchmark: simulate + trace + detect + partition.
func BenchmarkFullPipeline(b *testing.B) {
	w := weakrace.Figure2()
	for i := 0; i < b.N; i++ {
		res, err := weakrace.Simulate(w.Prog, weakrace.SimConfig{
			Model: weakrace.WO, Seed: int64(i), InitMemory: w.InitMemory,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := weakrace.Detect(weakrace.TraceExecution(res.Exec), weakrace.DetectOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

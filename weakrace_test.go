package weakrace_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"weakrace"
)

// The README quickstart, as a test: build a program, run it weak, trace,
// detect, report.
func TestPublicAPIQuickstart(t *testing.T) {
	b := weakrace.NewProgram("quickstart", 2, 2)
	b.Thread("P1").
		Write(weakrace.At(0), weakrace.Imm(1)).
		Write(weakrace.At(1), weakrace.Imm(1))
	b.Thread("P2").
		Read(0, weakrace.At(1)).
		Read(1, weakrace.At(0))
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	res, err := weakrace.Simulate(prog, weakrace.SimConfig{Model: weakrace.WO, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	tr := weakrace.TraceExecution(res.Exec)
	a, err := weakrace.Detect(tr, weakrace.DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.RaceFree() {
		t.Fatal("unsynchronized program reported race-free")
	}
	var buf bytes.Buffer
	if err := weakrace.WriteReport(&buf, a); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FIRST") {
		t.Fatalf("report missing first partition:\n%s", buf.String())
	}
	if err := weakrace.WriteGraph(&buf, a); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPITraceFiles(t *testing.T) {
	w := weakrace.Figure1b()
	res, err := weakrace.Simulate(w.Prog, weakrace.SimConfig{
		Model: weakrace.RCsc, Seed: 3, InitMemory: w.InitMemory,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := weakrace.TraceExecution(res.Exec)
	path := filepath.Join(t.TempDir(), "fig1b.wrt")
	if err := weakrace.WriteTraceFile(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := weakrace.ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, err := weakrace.Detect(got, weakrace.DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.RaceFree() {
		t.Fatal("figure 1b racy via trace file round trip")
	}
	var buf bytes.Buffer
	if err := weakrace.DumpTrace(&buf, got); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty trace dump")
	}
}

func TestPublicAPIConditionCheck(t *testing.T) {
	w := weakrace.Figure1a()
	gt, err := weakrace.EnumerateSC(w.Prog, w.InitMemory, weakrace.EnumLimits{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := weakrace.Simulate(w.Prog, weakrace.SimConfig{Model: weakrace.WO, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	a, err := weakrace.Detect(weakrace.TraceExecution(res.Exec), weakrace.DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep := weakrace.CheckCondition34(a, res.Exec, gt, 1<<18)
	if !rep.OK() {
		t.Fatalf("Condition 3.4 check failed: %s", rep)
	}
}

func TestPublicAPIOnTheFly(t *testing.T) {
	w := weakrace.ProducerConsumer(3, false)
	res, err := weakrace.Simulate(w.Prog, weakrace.SimConfig{Model: weakrace.WO, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	otf := weakrace.DetectOnTheFly(res.Exec, weakrace.OnTheFlyOptions{})
	if otf.RaceCount() == 0 {
		t.Fatal("on-the-fly baseline found no races in unsynced producer-consumer")
	}
}

func TestPublicAPIModelParsing(t *testing.T) {
	for _, m := range weakrace.AllModels {
		got, err := weakrace.ParseModel(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseModel(%q) = %v, %v", m.String(), got, err)
		}
	}
}

func TestPublicAPISCBoundary(t *testing.T) {
	w := weakrace.Figure1b()
	res, err := weakrace.Simulate(w.Prog, weakrace.SimConfig{
		Model: weakrace.WO, Seed: 1, InitMemory: w.InitMemory,
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, decided := weakrace.VerifySC(res.Exec, 1<<18)
	if !sc || !decided {
		t.Fatal("race-free weak execution not verified SC")
	}
	n, decided := weakrace.SCBoundary(res.Exec, 1<<18)
	if !decided || n != len(res.Exec.Ops) {
		t.Fatalf("boundary = %d, want %d", n, len(res.Exec.Ops))
	}
}

func TestPublicAPIScriptedAnomaly(t *testing.T) {
	res, err := weakrace.RunFig2Stale(weakrace.WO, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := weakrace.Detect(weakrace.TraceExecution(res.Exec), weakrace.DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Partitions) != 2 || len(a.FirstPartitions) != 1 {
		t.Fatalf("partitions = %d first = %d", len(a.Partitions), len(a.FirstPartitions))
	}
	// Affects API: the non-first partition's races are affected by the
	// first partition's race.
	var firstRace, laterRace int = -1, -1
	for pi, p := range a.Partitions {
		if p.First {
			firstRace = a.Partitions[pi].Races[0]
		} else {
			laterRace = a.Partitions[pi].Races[0]
		}
	}
	if !a.Affects(firstRace, laterRace) || a.Affects(laterRace, firstRace) {
		t.Fatal("affects relation wrong on figure 2")
	}
	if !a.Unaffected(firstRace) || a.Unaffected(laterRace) {
		t.Fatal("unaffected classification wrong on figure 2")
	}
}

func TestPublicAPIScriptBuilders(t *testing.T) {
	w := weakrace.Figure2()
	script := []weakrace.Decision{
		weakrace.ExecStep(0),
		weakrace.ExecStep(0),
		weakrace.RetireStep(0, 1),
	}
	res, err := weakrace.Simulate(w.Prog, weakrace.SimConfig{
		Model: weakrace.WO, InitMemory: w.InitMemory, Script: script,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("scripted prefix run did not complete")
	}
}

func TestPublicAPITextTrace(t *testing.T) {
	w := weakrace.Figure1b()
	res, err := weakrace.Simulate(w.Prog, weakrace.SimConfig{
		Model: weakrace.WO, Seed: 2, InitMemory: w.InitMemory,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := weakrace.TraceExecution(res.Exec)
	var buf bytes.Buffer
	if err := weakrace.EncodeTraceText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := weakrace.DecodeTraceText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEvents() != tr.NumEvents() {
		t.Fatal("text round trip lost events")
	}
}

func TestPublicAPILitmus(t *testing.T) {
	catalog := weakrace.LitmusCatalog()
	if len(catalog) < 8 {
		t.Fatalf("catalog = %d tests", len(catalog))
	}
	var sb *weakrace.LitmusTest
	for _, tc := range catalog {
		if tc.Name == "SB" {
			sb = tc
		}
	}
	if sb == nil {
		t.Fatal("SB missing from catalog")
	}
	r, err := weakrace.RunLitmus(sb, weakrace.SC, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.Relaxed != 0 {
		t.Fatal("SB relaxed outcome under SC")
	}
}

func TestPublicAPIRandomWorkload(t *testing.T) {
	w := weakrace.RandomWorkload(weakrace.RandomParams{Seed: 1, UnlockedFraction: 0.5})
	if w.Prog.NumThreads() == 0 {
		t.Fatal("empty random workload")
	}
}

// Exercise the remaining thin facade wrappers end to end.
func TestPublicAPISurface(t *testing.T) {
	// Builders with indexed addressing and register values.
	b := weakrace.NewProgram("surface", 4, 2)
	b.Thread("P1").
		Const(0, 2).
		Write(weakrace.AtReg(0, 1), weakrace.Imm(7)). // mem[3] = 7
		Read(1, weakrace.At(3)).
		Write(weakrace.At(0), weakrace.FromReg(1))
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := weakrace.Simulate(prog, weakrace.SimConfig{Model: weakrace.WO, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalMemory[0] != 7 || res.FinalMemory[3] != 7 {
		t.Fatalf("final memory = %v", res.FinalMemory)
	}

	// Stream codecs.
	tr := weakrace.TraceExecution(res.Exec)
	var bin bytes.Buffer
	if err := weakrace.EncodeTrace(&bin, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := weakrace.DecodeTrace(&bin); err != nil {
		t.Fatal(err)
	}

	// File sets.
	dir := filepath.Join(t.TempDir(), "set")
	if err := weakrace.WriteTraceFileSet(dir, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := weakrace.ReadTraceFileSet(dir); err != nil {
		t.Fatal(err)
	}

	// DOT export.
	a, err := weakrace.Detect(tr, weakrace.DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var dot bytes.Buffer
	if err := weakrace.WriteDOT(&dot, a); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "digraph") {
		t.Fatal("DOT output wrong")
	}

	// Assembler.
	prog2, _, err := weakrace.Assemble(strings.NewReader(
		"program \"s\"\nlocations 1\nregisters 1\nthread T:\nnop\n"))
	if err != nil || prog2.NumThreads() != 1 {
		t.Fatalf("Assemble: %v", err)
	}

	// Workload constructors.
	for _, w := range []*weakrace.Workload{
		weakrace.LockedCounter(2, 2, -1),
		weakrace.BarrierPhases(2),
		weakrace.WriteBurst(2, 3, 2),
		weakrace.Dekker(1),
	} {
		if err := w.Prog.Validate(); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
	}

	// SC sampling and the online first-race extension.
	w := weakrace.Figure1a()
	gt, err := weakrace.SampleSC(w.Prog, w.InitMemory, 20)
	if err != nil || gt.Executions != 20 {
		t.Fatalf("SampleSC: %v", err)
	}
	fr := weakrace.DetectFirstRacesOnTheFly(res.Exec, weakrace.OnTheFlyOptions{})
	if fr == nil {
		t.Fatal("nil first-race result")
	}

	// The Figure 2 script is applicable (asserted by RunFig2Stale inside).
	if len(weakrace.Fig2StaleScript()) == 0 {
		t.Fatal("empty Figure 2 script")
	}
}

package weakrace_test

import (
	"fmt"
	"log"

	"weakrace"
)

// The full pipeline on the paper's Figure 1a: simulate unsynchronized
// message passing on weak ordering, trace it, and detect its races.
func Example() {
	w := weakrace.Figure1a()
	res, err := weakrace.Simulate(w.Prog, weakrace.SimConfig{
		Model: weakrace.WO, Seed: 1, InitMemory: w.InitMemory,
	})
	if err != nil {
		log.Fatal(err)
	}
	a, err := weakrace.Detect(weakrace.TraceExecution(res.Exec), weakrace.DetectOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("race-free:", a.RaceFree())
	fmt.Println("first partitions:", len(a.FirstPartitions))
	// Output:
	// race-free: false
	// first partitions: 1
}

// Race freedom certifies sequential consistency (Condition 3.4(1)): the
// Figure 1b program is data-race-free, so every weak execution is SC.
func ExampleDetect_raceFree() {
	w := weakrace.Figure1b()
	res, err := weakrace.Simulate(w.Prog, weakrace.SimConfig{
		Model: weakrace.RCsc, Seed: 5, InitMemory: w.InitMemory,
	})
	if err != nil {
		log.Fatal(err)
	}
	a, err := weakrace.Detect(weakrace.TraceExecution(res.Exec), weakrace.DetectOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sc, decided := weakrace.VerifySC(res.Exec, 1<<20)
	fmt.Println("race-free:", a.RaceFree())
	fmt.Println("sequentially consistent:", sc && decided)
	// Output:
	// race-free: true
	// sequentially consistent: true
}

// Building a program with the assembler.
func ExampleAssembleString() {
	prog, initMem, err := weakrace.AssembleString(`
program "handoff"
locations 2
registers 1
init [1] = 0

thread producer:
    write [0], #99
    sync.write [1], #1

thread consumer:
wait:
    sync.read r0, [1]
    bz r0, wait
    read r0, [0]
`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := weakrace.Simulate(prog, weakrace.SimConfig{
		Model: weakrace.WO, Seed: 3, InitMemory: initMem,
	})
	if err != nil {
		log.Fatal(err)
	}
	a, err := weakrace.Detect(weakrace.TraceExecution(res.Exec), weakrace.DetectOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("race-free:", a.RaceFree())
	// Output:
	// race-free: true
}

// Constructing the paper's Figure 2b anomaly deterministically with a
// scheduler script, then reading the first partition.
func ExampleRunFig2Stale() {
	res, err := weakrace.RunFig2Stale(weakrace.WO, 1)
	if err != nil {
		log.Fatal(err)
	}
	a, err := weakrace.Detect(weakrace.TraceExecution(res.Exec), weakrace.DetectOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("partitions:", len(a.Partitions))
	fmt.Println("first partitions:", len(a.FirstPartitions))
	n, _ := weakrace.SCBoundary(res.Exec, 1<<20)
	fmt.Printf("SC prefix: %d of %d ops\n", n, len(res.Exec.Ops))
	// Output:
	// partitions: 2
	// first partitions: 1
	// SC prefix: 3 of 17 ops
}

// A detection campaign aggregates races across many seeds.
func ExampleRunCampaign() {
	rep, err := weakrace.RunCampaign(weakrace.CampaignConfig{
		Workload: weakrace.RaceChain(3),
		Model:    weakrace.WO,
		Seeds:    20,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("racy executions:", rep.Racy)
	fmt.Println("distinct races:", len(rep.Races))
	// Output:
	// racy executions: 20
	// distinct races: 3
}
